// Zero-copy and batch sealing. The steady-state ORAM block path seals
// and opens one fixed-size record per device slot, and the historical
// Seal/Open contract allocated the output (and an HMAC state) on every
// call — the dominant allocation churn of a cycle. Two optional
// capability interfaces fix that:
//
//   - InplaceSealer seals/opens into caller-provided buffers, with the
//     HMAC state drawn from an internal sync.Pool, so the per-record
//     cost drops to the AES-CTR stream construction;
//   - BatchSealer processes a whole run of records at once, fanning
//     the crypto across a bounded set of worker goroutines while
//     drawing the nonces serially in index order first — so the
//     sealed bytes are exactly what sequential Seal calls would have
//     produced, whatever the worker count.
//
// The package-level SealInto/OpenInto/SealBatch/OpenBatch helpers fall
// back to the plain Sealer contract for implementations (e.g. fault-
// injecting test sealers) that predate these interfaces.
package blockcipher

import (
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"
)

// InplaceSealer is the optional zero-copy contract: sealing and
// opening into caller-provided buffers instead of allocating.
type InplaceSealer interface {
	// SealInto seals plaintext into dst, which must be exactly
	// len(plaintext)+Overhead() bytes. The sealed bytes are identical
	// to what Seal would have returned at the same point in the nonce
	// stream.
	SealInto(dst, plaintext []byte) error
	// OpenInto verifies sealed and decrypts it into dst, which must be
	// exactly len(sealed)-Overhead() bytes.
	OpenInto(dst, sealed []byte) error
}

// BatchSealer is the optional bulk contract: seal or open a run of
// records with a bounded worker fan-out. Outputs land at the matching
// index whatever the scheduling, and the nonce stream advances exactly
// as len(plaintexts) sequential Seal calls would, so batch and serial
// execution are byte-for-byte interchangeable.
type BatchSealer interface {
	// SealBatch seals plaintexts[i] into outs[i] (each exactly
	// len(plaintexts[i])+Overhead() bytes) using up to workers
	// goroutines. workers <= 1 runs inline on the calling goroutine.
	SealBatch(plaintexts, outs [][]byte, workers int) error
	// OpenBatch verifies and decrypts sealed[i] into outs[i] (each
	// exactly len(sealed[i])-Overhead() bytes) using up to workers
	// goroutines.
	OpenBatch(sealed, outs [][]byte, workers int) error
}

// SealInto seals via s's in-place path when it has one, and through
// Seal plus a copy otherwise. dst must be exactly
// len(plaintext)+s.Overhead() bytes.
func SealInto(s Sealer, dst, plaintext []byte) error {
	if is, ok := s.(InplaceSealer); ok {
		return is.SealInto(dst, plaintext)
	}
	sealed, err := s.Seal(plaintext)
	if err != nil {
		return err
	}
	if len(sealed) != len(dst) {
		return fmt.Errorf("blockcipher: sealed %d bytes into a %d-byte buffer", len(sealed), len(dst))
	}
	copy(dst, sealed)
	return nil
}

// OpenInto opens via s's in-place path when it has one, and through
// Open plus a copy otherwise. dst must be exactly
// len(sealed)-s.Overhead() bytes.
func OpenInto(s Sealer, dst, sealed []byte) error {
	if is, ok := s.(InplaceSealer); ok {
		return is.OpenInto(dst, sealed)
	}
	pt, err := s.Open(sealed)
	if err != nil {
		return err
	}
	if len(pt) != len(dst) {
		return fmt.Errorf("blockcipher: opened %d bytes into a %d-byte buffer", len(pt), len(dst))
	}
	copy(dst, pt)
	return nil
}

// SealBatch seals a run via s's batch path when it has one, falling
// back to sequential in-place seals otherwise.
func SealBatch(s Sealer, plaintexts, outs [][]byte, workers int) error {
	countBytes(&sealedBytes, plaintexts)
	if bs, ok := s.(BatchSealer); ok {
		return bs.SealBatch(plaintexts, outs, workers)
	}
	if len(plaintexts) != len(outs) {
		return fmt.Errorf("blockcipher: %d plaintexts, %d outputs", len(plaintexts), len(outs))
	}
	for i := range plaintexts {
		if err := SealInto(s, outs[i], plaintexts[i]); err != nil {
			return fmt.Errorf("blockcipher: record %d: %w", i, err)
		}
	}
	return nil
}

// OpenBatch opens a run via s's batch path when it has one, falling
// back to sequential in-place opens otherwise.
func OpenBatch(s Sealer, sealed, outs [][]byte, workers int) error {
	countBytes(&openedBytes, sealed)
	if bs, ok := s.(BatchSealer); ok {
		return bs.OpenBatch(sealed, outs, workers)
	}
	if len(sealed) != len(outs) {
		return fmt.Errorf("blockcipher: %d records, %d outputs", len(sealed), len(outs))
	}
	for i := range sealed {
		if err := OpenInto(s, outs[i], sealed[i]); err != nil {
			return fmt.Errorf("blockcipher: record %d: %w", i, err)
		}
	}
	return nil
}

// sealScratch is the reusable per-goroutine state of one seal/open:
// the keyed HMAC instance, reset instead of reconstructed per record,
// and the tag buffer (kept here because passing a stack array through
// the hash.Hash interface makes it escape).
type sealScratch struct {
	h   hash.Hash
	sum [tagSize]byte
}

func (s *AESSealer) getScratch() *sealScratch {
	if sc, ok := s.scratch.Get().(*sealScratch); ok {
		return sc
	}
	return &sealScratch{h: hmac.New(sha256.New, s.mac)}
}

func (s *AESSealer) putScratch(sc *sealScratch) { s.scratch.Put(sc) }

// nextNonce draws the next nonce from the sealer's deterministic
// counter + PRNG stream. Serial by contract: batch sealing draws all
// nonces in index order before any crypto runs, so the stream is
// identical to sequential sealing.
func (s *AESSealer) nextNonce(nonce *[nonceSize]byte) {
	s.counter++
	binary.BigEndian.PutUint64(nonce[:8], s.counter)
	binary.BigEndian.PutUint64(nonce[8:], s.rng.Uint64())
}

// sealWithNonce is the pure crypto of one seal: safe for concurrent
// use across distinct scratches (the AES block and MAC key are
// read-only).
func (s *AESSealer) sealWithNonce(sc *sealScratch, dst []byte, nonce *[nonceSize]byte, plaintext []byte) {
	copy(dst[:nonceSize], nonce[:])
	stream := cipher.NewCTR(s.block, dst[:nonceSize])
	stream.XORKeyStream(dst[nonceSize:nonceSize+len(plaintext)], plaintext)
	sc.h.Reset()
	sc.h.Write(dst[:nonceSize+len(plaintext)])
	sc.h.Sum(dst[nonceSize+len(plaintext) : nonceSize+len(plaintext)])
}

// openWithScratch is the pure crypto of one open.
func (s *AESSealer) openWithScratch(sc *sealScratch, dst, sealed []byte) error {
	body := sealed[:len(sealed)-tagSize]
	tag := sealed[len(sealed)-tagSize:]
	sc.h.Reset()
	sc.h.Write(body)
	sc.h.Sum(sc.sum[:0])
	if !hmac.Equal(sc.sum[:], tag) {
		return ErrAuth
	}
	stream := cipher.NewCTR(s.block, body[:nonceSize])
	stream.XORKeyStream(dst, body[nonceSize:])
	return nil
}

// SealInto implements InplaceSealer.
func (s *AESSealer) SealInto(dst, plaintext []byte) error {
	if len(dst) != nonceSize+len(plaintext)+tagSize {
		return fmt.Errorf("blockcipher: seal buffer %d bytes, want %d", len(dst), nonceSize+len(plaintext)+tagSize)
	}
	var nonce [nonceSize]byte
	s.nextNonce(&nonce)
	sc := s.getScratch()
	s.sealWithNonce(sc, dst, &nonce, plaintext)
	s.putScratch(sc)
	return nil
}

// OpenInto implements InplaceSealer.
func (s *AESSealer) OpenInto(dst, sealed []byte) error {
	if len(sealed) < nonceSize+tagSize {
		return ErrCiphertext
	}
	if len(dst) != len(sealed)-nonceSize-tagSize {
		return fmt.Errorf("blockcipher: open buffer %d bytes, want %d", len(dst), len(sealed)-nonceSize-tagSize)
	}
	sc := s.getScratch()
	err := s.openWithScratch(sc, dst, sealed)
	s.putScratch(sc)
	return err
}

// fan runs f(scratch, i) for i in [0, n), inline when workers <= 1 and
// across min(workers, n) goroutines otherwise. The first error wins;
// remaining items may or may not run after one.
func (s *AESSealer) fan(n, workers int, f func(sc *sealScratch, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := s.getScratch()
		defer s.putScratch(sc)
		for i := 0; i < n; i++ {
			if err := f(sc, i); err != nil {
				return fmt.Errorf("blockcipher: record %d: %w", i, err)
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := s.getScratch()
			defer s.putScratch(sc)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(sc, i); err != nil {
					errs[w] = fmt.Errorf("blockcipher: record %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SealBatch implements BatchSealer. Nonces are drawn serially in index
// order before the parallel phase, so the output is byte-for-byte what
// sequential Seal calls would produce regardless of workers.
func (s *AESSealer) SealBatch(plaintexts, outs [][]byte, workers int) error {
	if len(plaintexts) != len(outs) {
		return fmt.Errorf("blockcipher: %d plaintexts, %d outputs", len(plaintexts), len(outs))
	}
	for i := range plaintexts {
		if len(outs[i]) != len(plaintexts[i])+s.Overhead() {
			return fmt.Errorf("blockcipher: record %d: seal buffer %d bytes, want %d", i, len(outs[i]), len(plaintexts[i])+s.Overhead())
		}
	}
	nonces := make([][nonceSize]byte, len(plaintexts))
	for i := range nonces {
		s.nextNonce(&nonces[i])
	}
	return s.fan(len(plaintexts), workers, func(sc *sealScratch, i int) error {
		s.sealWithNonce(sc, outs[i], &nonces[i], plaintexts[i])
		return nil
	})
}

// OpenBatch implements BatchSealer.
func (s *AESSealer) OpenBatch(sealed, outs [][]byte, workers int) error {
	if len(sealed) != len(outs) {
		return fmt.Errorf("blockcipher: %d records, %d outputs", len(sealed), len(outs))
	}
	for i := range sealed {
		if len(sealed[i]) < nonceSize+tagSize {
			return fmt.Errorf("blockcipher: record %d: %w", i, ErrCiphertext)
		}
		if len(outs[i]) != len(sealed[i])-s.Overhead() {
			return fmt.Errorf("blockcipher: record %d: open buffer %d bytes, want %d", i, len(outs[i]), len(sealed[i])-s.Overhead())
		}
	}
	return s.fan(len(sealed), workers, func(sc *sealScratch, i int) error {
		return s.openWithScratch(sc, outs[i], sealed[i])
	})
}

// SealInto implements InplaceSealer by copying (no overhead).
func (NullSealer) SealInto(dst, plaintext []byte) error {
	if len(dst) != len(plaintext) {
		return fmt.Errorf("blockcipher: seal buffer %d bytes, want %d", len(dst), len(plaintext))
	}
	copy(dst, plaintext)
	return nil
}

// OpenInto implements InplaceSealer by copying.
func (NullSealer) OpenInto(dst, sealed []byte) error {
	if len(dst) != len(sealed) {
		return fmt.Errorf("blockcipher: open buffer %d bytes, want %d", len(dst), len(sealed))
	}
	copy(dst, sealed)
	return nil
}

// SealBatch implements BatchSealer; with no nonce stream to order and
// no crypto to amortise, it copies inline whatever the worker count.
func (n NullSealer) SealBatch(plaintexts, outs [][]byte, workers int) error {
	if len(plaintexts) != len(outs) {
		return fmt.Errorf("blockcipher: %d plaintexts, %d outputs", len(plaintexts), len(outs))
	}
	for i := range plaintexts {
		if err := n.SealInto(outs[i], plaintexts[i]); err != nil {
			return fmt.Errorf("blockcipher: record %d: %w", i, err)
		}
	}
	return nil
}

// OpenBatch implements BatchSealer.
func (n NullSealer) OpenBatch(sealed, outs [][]byte, workers int) error {
	if len(sealed) != len(outs) {
		return fmt.Errorf("blockcipher: %d records, %d outputs", len(sealed), len(outs))
	}
	for i := range sealed {
		if err := n.OpenInto(outs[i], sealed[i]); err != nil {
			return fmt.Errorf("blockcipher: record %d: %w", i, err)
		}
	}
	return nil
}

// Compile-time capability conformance.
var (
	_ InplaceSealer = (*AESSealer)(nil)
	_ BatchSealer   = (*AESSealer)(nil)
	_ InplaceSealer = NullSealer{}
	_ BatchSealer   = NullSealer{}
)
