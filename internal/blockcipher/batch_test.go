package blockcipher

import (
	"bytes"
	"fmt"
	"testing"
)

// fill writes a deterministic pattern so records are distinguishable.
func fill(b []byte, seed byte) {
	for i := range b {
		b[i] = seed + byte(i*13)
	}
}

// TestBatchMatchesSequential is the determinism contract of the worker
// pool: for the same RNG state, SealBatch must produce byte-for-byte
// the sealed records a loop of Seal calls would, at every worker
// count. The device-trace equality tests upstack depend on this.
func TestBatchMatchesSequential(t *testing.T) {
	const n, size = 37, 264
	makeInputs := func() [][]byte {
		pts := make([][]byte, n)
		for i := range pts {
			pts[i] = make([]byte, size)
			fill(pts[i], byte(i))
		}
		return pts
	}

	seq := newTestSealer(t)
	pts := makeInputs()
	want := make([][]byte, n)
	for i, pt := range pts {
		ct, err := seq.Seal(pt)
		if err != nil {
			t.Fatalf("Seal record %d: %v", i, err)
		}
		want[i] = ct
	}

	for _, workers := range []int{0, 1, 2, 4, 16} {
		par := newTestSealer(t) // fresh RNG: same nonce stream as seq
		outs := make([][]byte, n)
		for i := range outs {
			outs[i] = make([]byte, size+par.Overhead())
		}
		if err := SealBatch(par, makeInputs(), outs, workers); err != nil {
			t.Fatalf("SealBatch(workers=%d): %v", workers, err)
		}
		for i := range outs {
			if !bytes.Equal(outs[i], want[i]) {
				t.Fatalf("workers=%d: record %d differs from sequential Seal", workers, i)
			}
		}

		opened := make([][]byte, n)
		for i := range opened {
			opened[i] = make([]byte, size)
		}
		if err := OpenBatch(par, outs, opened, workers); err != nil {
			t.Fatalf("OpenBatch(workers=%d): %v", workers, err)
		}
		for i := range opened {
			if !bytes.Equal(opened[i], pts[i]) {
				t.Fatalf("workers=%d: record %d did not round-trip", workers, i)
			}
		}
	}
}

func TestSealIntoOpenIntoRoundTrip(t *testing.T) {
	s := newTestSealer(t)
	pt := make([]byte, 512)
	fill(pt, 3)
	ct := make([]byte, len(pt)+s.Overhead())
	if err := s.SealInto(ct, pt); err != nil {
		t.Fatalf("SealInto: %v", err)
	}
	got := make([]byte, len(pt))
	if err := s.OpenInto(got, ct); err != nil {
		t.Fatalf("OpenInto: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("OpenInto did not recover the plaintext")
	}
}

func TestOpenBatchAuthFailure(t *testing.T) {
	s := newTestSealer(t)
	const n, size = 8, 128
	pts := make([][]byte, n)
	outs := make([][]byte, n)
	for i := range pts {
		pts[i] = make([]byte, size)
		fill(pts[i], byte(i))
		outs[i] = make([]byte, size+s.Overhead())
	}
	if err := SealBatch(s, pts, outs, 4); err != nil {
		t.Fatalf("SealBatch: %v", err)
	}
	outs[5][len(outs[5])-1] ^= 1 // tamper with one record's tag
	opened := make([][]byte, n)
	for i := range opened {
		opened[i] = make([]byte, size)
	}
	err := OpenBatch(s, outs, opened, 4)
	if err == nil {
		t.Fatal("OpenBatch accepted a tampered record")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("record 5")) {
		t.Fatalf("error does not attribute the tampered record: %v", err)
	}
}

func TestBatchLengthValidation(t *testing.T) {
	s := newTestSealer(t)
	pts := [][]byte{make([]byte, 64)}
	outs := [][]byte{make([]byte, 64)} // missing Overhead()
	if err := SealBatch(s, pts, outs, 1); err == nil {
		t.Fatal("SealBatch accepted a short output buffer")
	}
	if err := SealBatch(s, pts, make([][]byte, 2), 1); err == nil {
		t.Fatal("SealBatch accepted mismatched batch sizes")
	}
}

// TestSealAllocs is the zero-alloc regression gate for the hot path:
// the AES path may allocate at most once per record (the CTR stream
// state — see the batch.go rationale for keeping crypto/cipher's
// multi-block implementation), the null path not at all.
func TestSealAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	s := newTestSealer(t)
	pt := make([]byte, 1024)
	fill(pt, 9)
	ct := make([]byte, len(pt)+s.Overhead())

	if avg := testing.AllocsPerRun(200, func() {
		if err := s.SealInto(ct, pt); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Errorf("AESSealer.SealInto allocates %.1f times per record, want <= 1", avg)
	}

	got := make([]byte, len(pt))
	if err := s.SealInto(ct, pt); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := s.OpenInto(got, ct); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Errorf("AESSealer.OpenInto allocates %.1f times per record, want <= 1", avg)
	}

	var null NullSealer
	if avg := testing.AllocsPerRun(200, func() {
		if err := null.SealInto(pt, pt); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("NullSealer.SealInto allocates %.1f times per record, want 0", avg)
	}
}

// TestBatchRace drives concurrent batches through one sealer instance
// with a forced multi-worker pool; under -race this covers the scratch
// pool and the shared-nonce handoff.
func TestBatchRace(t *testing.T) {
	s := newTestSealer(t)
	const n, size, rounds = 64, 256, 20
	pts := make([][]byte, n)
	outs := make([][]byte, n)
	opened := make([][]byte, n)
	for i := range pts {
		pts[i] = make([]byte, size)
		fill(pts[i], byte(i))
		outs[i] = make([]byte, size+s.Overhead())
		opened[i] = make([]byte, size)
	}
	for r := 0; r < rounds; r++ {
		if err := SealBatch(s, pts, outs, 4); err != nil {
			t.Fatalf("round %d: SealBatch: %v", r, err)
		}
		if err := OpenBatch(s, outs, opened, 4); err != nil {
			t.Fatalf("round %d: OpenBatch: %v", r, err)
		}
		for i := range opened {
			if !bytes.Equal(opened[i], pts[i]) {
				t.Fatalf("round %d: record %d corrupted", r, i)
			}
		}
	}
}

// BenchmarkSealer is the sealer microbenchmark behind the CI
// regression gate: per-record seal throughput at representative block
// sizes, reported via b.SetBytes so the MB/s column is comparable
// across runs.
func BenchmarkSealer(b *testing.B) {
	for _, size := range []int{256, 1024, 4096} {
		s, err := NewAESSealer(testKey(), NewRNGFromString("sealer-bench"))
		if err != nil {
			b.Fatal(err)
		}
		pt := make([]byte, size)
		fill(pt, 1)
		ct := make([]byte, size+s.Overhead())
		b.Run(fmt.Sprintf("Seal/%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.SealInto(ct, pt); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err := s.SealInto(ct, pt); err != nil {
			b.Fatal(err)
		}
		out := make([]byte, size)
		b.Run(fmt.Sprintf("Open/%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.OpenInto(out, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSealBatch measures the worker pool at a shuffle-quantum
// batch shape.
func BenchmarkSealBatch(b *testing.B) {
	const n, size = 64, 1024
	for _, workers := range []int{1, 2, 4} {
		s, err := NewAESSealer(testKey(), NewRNGFromString("sealer-bench"))
		if err != nil {
			b.Fatal(err)
		}
		pts := make([][]byte, n)
		outs := make([][]byte, n)
		for i := range pts {
			pts[i] = make([]byte, size)
			fill(pts[i], byte(i))
			outs[i] = make([]byte, size+s.Overhead())
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(n * size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := SealBatch(s, pts, outs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
