package blockcipher

import "sync/atomic"

// Process-global sealer throughput totals, fed by SealBatch/OpenBatch
// (every hot-path seal/open goes through those package functions).
// Plain atomics keep the cost to one add per batch, so the counters
// are always on. internal/engine exposes them on /metrics as
// Timing-class gauges: being process-global they accumulate across
// every sealer in the process, which makes them throughput telemetry,
// not a per-workload public observable — they must never join the
// audited snapshot.
var (
	sealedBytes atomic.Int64
	openedBytes atomic.Int64
)

func countBytes(c *atomic.Int64, bufs [][]byte) {
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	c.Add(n)
}

// Throughput returns the cumulative plaintext bytes sealed and sealed
// bytes opened by this process.
func Throughput() (sealed, opened int64) {
	return sealedBytes.Load(), openedBytes.Load()
}
