//go:build race

package blockcipher

// raceEnabled skips allocation-count assertions, which the race
// detector inflates.
const raceEnabled = true
