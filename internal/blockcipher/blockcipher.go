// Package blockcipher provides the cryptographic primitives used by
// every ORAM scheme in this repository: an authenticated block sealer
// (AES-CTR + HMAC-SHA256), a PRF for deterministic pseudo-random
// derivations, and a seeded deterministic CSPRNG so whole experiments
// replay bit-for-bit.
//
// All ORAM contents stored on simulated memory or storage devices pass
// through a Sealer, so data integrity is verified end-to-end through
// real cryptography even though the devices themselves are simulated.
package blockcipher

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by Sealer implementations.
var (
	// ErrAuth indicates ciphertext whose authentication tag does not
	// verify: the block was corrupted or tampered with.
	ErrAuth = errors.New("blockcipher: authentication failed")
	// ErrCiphertext indicates ciphertext too short to contain the
	// nonce and tag framing.
	ErrCiphertext = errors.New("blockcipher: malformed ciphertext")
)

// Sealer encrypts and authenticates fixed-size ORAM blocks.
//
// Seal must be non-deterministic (fresh nonce per call) so that
// re-encrypting the same plaintext yields a different ciphertext;
// ORAM security requires that an adversary cannot link a block across
// shuffles by its ciphertext.
type Sealer interface {
	// Seal encrypts plaintext and returns nonce‖ciphertext‖tag.
	Seal(plaintext []byte) ([]byte, error)
	// Open verifies and decrypts a value produced by Seal.
	Open(sealed []byte) ([]byte, error)
	// Overhead returns the number of bytes Seal adds to a plaintext.
	Overhead() int
}

const (
	nonceSize = 16 // AES block size; used directly as the CTR IV
	tagSize   = 32 // HMAC-SHA256
)

// AESSealer is an AES-CTR + HMAC-SHA256 (encrypt-then-MAC) Sealer.
// The nonce is drawn from an internal deterministic counter mixed with
// the sealer's PRNG, giving unique IVs without OS entropy so
// experiments stay reproducible.
type AESSealer struct {
	block   cipher.Block
	mac     []byte // HMAC key
	rng     *RNG
	counter uint64
	scratch sync.Pool // *sealScratch: reusable HMAC state (see batch.go)
}

// NewAESSealer builds an AESSealer from a 32-byte master key. The key
// is split by a PRF into independent encryption and MAC keys. The rng
// provides nonce entropy; it must not be shared with code whose
// randomness must be independent of sealing activity.
func NewAESSealer(master []byte, rng *RNG) (*AESSealer, error) {
	if len(master) != 32 {
		return nil, fmt.Errorf("blockcipher: master key must be 32 bytes, got %d", len(master))
	}
	if rng == nil {
		return nil, errors.New("blockcipher: nil RNG")
	}
	prf, err := NewPRF(master)
	if err != nil {
		return nil, err
	}
	encKey := prf.Derive("enc", 32)
	macKey := prf.Derive("mac", 32)
	blk, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("blockcipher: %w", err)
	}
	return &AESSealer{block: blk, mac: macKey, rng: rng}, nil
}

// Overhead implements Sealer.
func (s *AESSealer) Overhead() int { return nonceSize + tagSize }

// Seal implements Sealer.
func (s *AESSealer) Seal(plaintext []byte) ([]byte, error) {
	out := make([]byte, nonceSize+len(plaintext)+tagSize)
	var nonce [nonceSize]byte
	s.nextNonce(&nonce)
	sc := s.getScratch()
	s.sealWithNonce(sc, out, &nonce, plaintext)
	s.putScratch(sc)
	return out, nil
}

// Open implements Sealer.
func (s *AESSealer) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < nonceSize+tagSize {
		return nil, ErrCiphertext
	}
	pt := make([]byte, len(sealed)-nonceSize-tagSize)
	sc := s.getScratch()
	err := s.openWithScratch(sc, pt, sealed)
	s.putScratch(sc)
	if err != nil {
		return nil, err
	}
	return pt, nil
}

// NullSealer passes plaintext through unchanged. It exists for
// performance-model-only runs where cryptographic cost should be
// excluded (the paper's theoretical analysis counts I/O bytes only);
// it must never be used where confidentiality matters.
type NullSealer struct{}

// Seal implements Sealer by copying the plaintext.
func (NullSealer) Seal(plaintext []byte) ([]byte, error) {
	out := make([]byte, len(plaintext))
	copy(out, plaintext)
	return out, nil
}

// Open implements Sealer by copying the ciphertext.
func (NullSealer) Open(sealed []byte) ([]byte, error) {
	out := make([]byte, len(sealed))
	copy(out, sealed)
	return out, nil
}

// Overhead implements Sealer.
func (NullSealer) Overhead() int { return 0 }

// PRF is a keyed pseudo-random function (HMAC-SHA256) used to derive
// subkeys and deterministic per-label pseudo-random bytes.
type PRF struct {
	key []byte
}

// NewPRF returns a PRF keyed with key (any length ≥ 16 bytes).
func NewPRF(key []byte) (*PRF, error) {
	if len(key) < 16 {
		return nil, fmt.Errorf("blockcipher: PRF key must be at least 16 bytes, got %d", len(key))
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &PRF{key: k}, nil
}

// Derive returns n pseudo-random bytes bound to label. Equal (key,
// label, n) always yields equal output.
func (p *PRF) Derive(label string, n int) []byte {
	out := make([]byte, 0, n)
	var ctr uint32
	for len(out) < n {
		h := hmac.New(sha256.New, p.key)
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write([]byte(label))
		out = append(out, h.Sum(nil)...)
		ctr++
	}
	return out[:n]
}

// Uint64 returns a pseudo-random uint64 bound to label and index.
func (p *PRF) Uint64(label string, index uint64) uint64 {
	h := hmac.New(sha256.New, p.key)
	var ib [8]byte
	binary.BigEndian.PutUint64(ib[:], index)
	h.Write([]byte(label))
	h.Write(ib[:])
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// RNG is a deterministic cryptographically strong pseudo-random number
// generator backed by an AES-CTR keystream. It is NOT safe for
// concurrent use; give each goroutine its own RNG (see Fork).
type RNG struct {
	stream cipher.Stream
	buf    [512]byte
	pos    int
}

// NewRNG returns an RNG seeded from the given seed bytes. Any seed
// length is accepted; it is stretched through SHA-256.
func NewRNG(seed []byte) *RNG {
	sum := sha256.Sum256(seed)
	blk, err := aes.NewCipher(sum[:])
	if err != nil {
		// aes.NewCipher only fails on bad key length; sum is 32 bytes.
		panic("blockcipher: impossible: " + err.Error())
	}
	iv := sha256.Sum256(append([]byte("rng-iv"), seed...))
	r := &RNG{stream: cipher.NewCTR(blk, iv[:16])}
	r.refill()
	return r
}

// NewRNGFromString seeds an RNG from a string label, convenient for
// tests and benchmarks.
func NewRNGFromString(seed string) *RNG { return NewRNG([]byte(seed)) }

func (r *RNG) refill() {
	for i := range r.buf {
		r.buf[i] = 0
	}
	r.stream.XORKeyStream(r.buf[:], r.buf[:])
	r.pos = 0
}

// Read fills p with pseudo-random bytes; it never fails.
func (r *RNG) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if r.pos == len(r.buf) {
			r.refill()
		}
		c := copy(p, r.buf[r.pos:])
		r.pos += c
		p = p[c:]
	}
	return n, nil
}

// Uint64 returns a uniformly random uint64.
func (r *RNG) Uint64() uint64 {
	var b [8]byte
	r.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Int63 returns a uniformly random non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// Modulo bias is removed by rejection sampling.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("blockcipher: Intn argument must be positive")
	}
	max := uint64(n)
	// Largest multiple of n that fits in a uint64.
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Int63n returns a uniformly random int64 in [0, n). It panics if
// n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("blockcipher: Int63n argument must be positive")
	}
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) generated with
// the Fisher-Yates algorithm.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent RNG labelled by s. Independent forks let
// concurrent components draw randomness without sharing state while
// keeping the whole experiment a pure function of the root seed.
func (r *RNG) Fork(s string) *RNG {
	var seed [40]byte
	r.Read(seed[:8])
	sum := sha256.Sum256([]byte(s))
	copy(seed[8:], sum[:])
	return NewRNG(seed[:])
}
