package trace

import (
	"math"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/simclock"
)

func TestRecorderCapturesEvents(t *testing.T) {
	clk := simclock.New()
	dev, err := device.New(device.DRAM(), 8, 16, clk)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	dev.SetHook(rec.Hook())
	buf := make([]byte, 8)
	dev.Write(3, buf)
	dev.Read(3, buf)
	dev.Read(5, buf)
	if rec.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", rec.Len())
	}
	reads := rec.Reads()
	if len(reads) != 2 || reads[0] != 3 || reads[1] != 5 {
		t.Fatalf("Reads() = %v", reads)
	}
	ev := rec.Events()[0]
	if ev.Op != device.OpWrite || ev.Slot != 3 || ev.Dev != "dram" {
		t.Fatalf("Events()[0] = %+v", ev)
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	rng := blockcipher.NewRNGFromString("uniform")
	obs := make([]int64, 10000)
	for i := range obs {
		obs[i] = rng.Int63n(1000)
	}
	check, err := CheckUniform(obs, 1000, 20, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !check.Pass {
		t.Fatalf("uniform data rejected: chi2=%.1f crit=%.1f", check.Chi2, check.Critical)
	}
}

func TestChiSquareUniformRejectsSkew(t *testing.T) {
	rng := blockcipher.NewRNGFromString("skew")
	obs := make([]int64, 10000)
	for i := range obs {
		if i%2 == 0 {
			obs[i] = rng.Int63n(100) // heavy head
		} else {
			obs[i] = rng.Int63n(1000)
		}
	}
	check, err := CheckUniform(obs, 1000, 20, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if check.Pass {
		t.Fatalf("skewed data accepted: chi2=%.1f crit=%.1f", check.Chi2, check.Critical)
	}
}

func TestChiSquareUniformValidation(t *testing.T) {
	if _, _, err := ChiSquareUniform(make([]int64, 100), 10, 1); err == nil {
		t.Error("accepted 1 bin")
	}
	if _, _, err := ChiSquareUniform(make([]int64, 3), 10, 2); err == nil {
		t.Error("accepted too few observations")
	}
	if _, _, err := ChiSquareUniform([]int64{999}, 10, 2); err == nil {
		t.Error("accepted out-of-range slot")
	}
	if _, _, err := ChiSquareUniform(make([]int64, 100), 0, 2); err == nil {
		t.Error("accepted zero slots")
	}
}

func TestChiSquareCriticalKnownValues(t *testing.T) {
	// Reference values: chi2(k=9, 0.001) = 27.88; chi2(k=19, 0.001) = 43.82;
	// chi2(k=9, 0.05) = 16.92. Wilson-Hilferty is good to a few percent.
	cases := []struct {
		k     int
		alpha float64
		want  float64
	}{
		{9, 0.001, 27.88},
		{19, 0.001, 43.82},
		{9, 0.05, 16.92},
		{99, 0.01, 134.64},
	}
	for _, tc := range cases {
		got := ChiSquareCritical(tc.k, tc.alpha)
		if math.Abs(got-tc.want)/tc.want > 0.03 {
			t.Errorf("ChiSquareCritical(%d, %v) = %.2f, want ≈%.2f", tc.k, tc.alpha, got, tc.want)
		}
	}
}

func TestFirstRepeat(t *testing.T) {
	if got := FirstRepeat([]int64{1, 2, 3}); got != -1 {
		t.Fatalf("FirstRepeat(distinct) = %d", got)
	}
	if got := FirstRepeat([]int64{1, 2, 1, 3}); got != 2 {
		t.Fatalf("FirstRepeat = %d, want 2", got)
	}
	if got := FirstRepeat(nil); got != -1 {
		t.Fatalf("FirstRepeat(nil) = %d", got)
	}
}

func TestTwoSampleChiSquareSameDistribution(t *testing.T) {
	rng := blockcipher.NewRNGFromString("two-same")
	a := make([]int64, 5000)
	b := make([]int64, 5000)
	for i := range a {
		a[i] = rng.Int63n(500)
		b[i] = rng.Int63n(500)
	}
	chi2, dof, err := TwoSampleChiSquare(a, b, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical(dof, 0.001); chi2 > crit {
		t.Fatalf("identical distributions distinguished: chi2=%.1f crit=%.1f", chi2, crit)
	}
}

func TestTwoSampleChiSquareDifferentDistributions(t *testing.T) {
	rng := blockcipher.NewRNGFromString("two-diff")
	a := make([]int64, 5000)
	b := make([]int64, 5000)
	for i := range a {
		a[i] = rng.Int63n(500)
		b[i] = rng.Int63n(250) // half the range
	}
	chi2, dof, err := TwoSampleChiSquare(a, b, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical(dof, 0.001); chi2 <= crit {
		t.Fatalf("different distributions not distinguished: chi2=%.1f crit=%.1f", chi2, crit)
	}
}

func TestTwoSampleValidation(t *testing.T) {
	if _, _, err := TwoSampleChiSquare(nil, []int64{1}, 10, 2); err == nil {
		t.Error("accepted empty sample")
	}
	if _, _, err := TwoSampleChiSquare([]int64{1}, []int64{1}, 10, 1); err == nil {
		t.Error("accepted 1 bin")
	}
	if _, _, err := TwoSampleChiSquare([]int64{99}, []int64{1}, 10, 2); err == nil {
		t.Error("accepted out-of-range slot")
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.6, 0.9, 0.99, 0.999} {
		up := normalQuantile(p)
		down := normalQuantile(1 - p)
		if math.Abs(up+down) > 1e-6 {
			t.Errorf("quantile not symmetric at %v: %v vs %v", p, up, down)
		}
	}
	// z(0.999) ≈ 3.090.
	if z := normalQuantile(0.999); math.Abs(z-3.090) > 0.01 {
		t.Errorf("z(0.999) = %v, want ≈3.090", z)
	}
}
