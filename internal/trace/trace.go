// Package trace records the adversary's view of a simulated device —
// the sequence of (operation, slot) pairs on the bus — and provides
// the statistical tests the security arguments rest on: uniformity of
// accessed locations, absence of intra-period repeats (the square-root
// invariant), and indistinguishability of two traces produced by
// different plaintext workloads.
package trace

import (
	"fmt"
	"math"

	"repro/internal/device"
)

// Event is one observed device access.
type Event struct {
	Dev  string
	Op   device.Op
	Slot int64
}

// Recorder captures events from one or more devices via their hooks.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Hook returns a device.Hook that appends to the recorder. Attach it
// with dev.SetHook(rec.Hook()).
func (r *Recorder) Hook() device.Hook {
	return func(dev string, op device.Op, slot int64) {
		r.events = append(r.events, Event{Dev: dev, Op: op, Slot: slot})
	}
}

// Events returns the recorded sequence.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset clears the recording.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Reads returns only the read events' slots, in order.
func (r *Recorder) Reads() []int64 {
	var out []int64
	for _, e := range r.events {
		if e.Op == device.OpRead {
			out = append(out, e.Slot)
		}
	}
	return out
}

// ChiSquareUniform computes the chi-square statistic of the observed
// slot counts against the uniform distribution over `bins` equal-width
// bins spanning [0, slots). It returns the statistic and the degrees
// of freedom.
func ChiSquareUniform(observed []int64, slots int64, bins int) (float64, int, error) {
	if bins < 2 {
		return 0, 0, fmt.Errorf("trace: need ≥ 2 bins, got %d", bins)
	}
	if slots <= 0 {
		return 0, 0, fmt.Errorf("trace: slots must be positive")
	}
	if len(observed) < 5*bins {
		return 0, 0, fmt.Errorf("trace: %d observations too few for %d bins (need ≥ %d)", len(observed), bins, 5*bins)
	}
	counts := make([]int64, bins)
	for _, s := range observed {
		if s < 0 || s >= slots {
			return 0, 0, fmt.Errorf("trace: slot %d out of range [0,%d)", s, slots)
		}
		b := int(s * int64(bins) / slots)
		if b == bins {
			b--
		}
		counts[b]++
	}
	// Bin widths may differ by one slot; use exact expected counts.
	var chi2 float64
	for b := 0; b < bins; b++ {
		lo := int64(b) * slots / int64(bins)
		hi := int64(b+1) * slots / int64(bins)
		expected := float64(len(observed)) * float64(hi-lo) / float64(slots)
		d := float64(counts[b]) - expected
		chi2 += d * d / expected
	}
	return chi2, bins - 1, nil
}

// ChiSquareCritical returns the approximate critical value of the
// chi-square distribution with k degrees of freedom at the given upper
// tail probability (e.g. 0.001), using the Wilson–Hilferty cube
// approximation — accurate to a few percent for k ≥ 3, ample for a
// pass/fail security smoke test.
func ChiSquareCritical(k int, alpha float64) float64 {
	z := normalQuantile(1 - alpha)
	kf := float64(k)
	t := 1 - 2/(9*kf) + z*math.Sqrt(2/(9*kf))
	return kf * t * t * t
}

// normalQuantile is the Acklam/Moro-style rational approximation of
// the standard normal inverse CDF.
func normalQuantile(p float64) float64 {
	// Beasley-Springer-Moro.
	a := []float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := []float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := []float64{0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < len(c); i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		x = -x
	}
	return x
}

// UniformityCheck runs ChiSquareUniform and compares against the
// critical value at significance alpha, returning a human-readable
// verdict.
type UniformityCheck struct {
	Chi2     float64
	Dof      int
	Critical float64
	Pass     bool
}

// CheckUniform tests whether observed slots are consistent with a
// uniform access distribution at significance alpha.
func CheckUniform(observed []int64, slots int64, bins int, alpha float64) (UniformityCheck, error) {
	chi2, dof, err := ChiSquareUniform(observed, slots, bins)
	if err != nil {
		return UniformityCheck{}, err
	}
	crit := ChiSquareCritical(dof, alpha)
	return UniformityCheck{Chi2: chi2, Dof: dof, Critical: crit, Pass: chi2 <= crit}, nil
}

// FirstRepeat returns the index of the first slot that repeats within
// the sequence, or -1 if all slots are distinct. Used to verify the
// square-root read-once invariant over one access period.
func FirstRepeat(slots []int64) int {
	seen := make(map[int64]bool, len(slots))
	for i, s := range slots {
		if seen[s] {
			return i
		}
		seen[s] = true
	}
	return -1
}

// TwoSampleChiSquare compares two traces' slot histograms over shared
// equal-width bins; a small statistic means an adversary cannot
// distinguish the workloads that produced them from where they
// touched storage. Returns the statistic and degrees of freedom.
func TwoSampleChiSquare(a, b []int64, slots int64, bins int) (float64, int, error) {
	if bins < 2 {
		return 0, 0, fmt.Errorf("trace: need ≥ 2 bins")
	}
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, fmt.Errorf("trace: empty sample")
	}
	ca := make([]float64, bins)
	cb := make([]float64, bins)
	binOf := func(s int64) (int, error) {
		if s < 0 || s >= slots {
			return 0, fmt.Errorf("trace: slot %d out of range", s)
		}
		bi := int(s * int64(bins) / slots)
		if bi == bins {
			bi--
		}
		return bi, nil
	}
	for _, s := range a {
		bi, err := binOf(s)
		if err != nil {
			return 0, 0, err
		}
		ca[bi]++
	}
	for _, s := range b {
		bi, err := binOf(s)
		if err != nil {
			return 0, 0, err
		}
		cb[bi]++
	}
	na, nb := float64(len(a)), float64(len(b))
	var chi2 float64
	dof := 0
	for i := 0; i < bins; i++ {
		tot := ca[i] + cb[i]
		if tot == 0 {
			continue
		}
		dof++
		ea := tot * na / (na + nb)
		eb := tot * nb / (na + nb)
		da := ca[i] - ea
		db := cb[i] - eb
		chi2 += da*da/ea + db*db/eb
	}
	if dof < 2 {
		return 0, 0, fmt.Errorf("trace: fewer than 2 populated bins")
	}
	return chi2, dof - 1, nil
}
