package workload

import (
	"testing"

	"repro/internal/blockcipher"
)

func rng() *blockcipher.RNG { return blockcipher.NewRNGFromString("workload-test") }

func TestHotspotValidation(t *testing.T) {
	r := rng()
	if _, err := NewHotspot(0, 0.8, 0.2, r); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := NewHotspot(10, 1.5, 0.2, r); err == nil {
		t.Error("accepted hotFrac > 1")
	}
	if _, err := NewHotspot(10, 0.8, 0, r); err == nil {
		t.Error("accepted hotSize = 0")
	}
	if _, err := NewHotspot(10, 0.8, 0.2, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestHotspotDistribution(t *testing.T) {
	const n = 1000
	g, err := NewHotspot(n, 0.8, 0.2, rng())
	if err != nil {
		t.Fatal(err)
	}
	if g.HotLen() != 200 {
		t.Fatalf("HotLen() = %d, want 200", g.HotLen())
	}
	const draws = 50000
	inHot := 0
	for i := 0; i < draws; i++ {
		a := g.Next()
		if a < 0 || a >= n {
			t.Fatalf("address %d out of range", a)
		}
		if a < g.HotLen() {
			inHot++
		}
	}
	// Expected hot fraction: 0.8 + 0.2·0.2 = 0.84.
	frac := float64(inHot) / draws
	if frac < 0.81 || frac > 0.87 {
		t.Fatalf("hot fraction = %.3f, want ≈0.84", frac)
	}
}

func TestHotspotTinyRegionNonEmpty(t *testing.T) {
	g, err := NewHotspot(3, 0.8, 0.01, rng())
	if err != nil {
		t.Fatal(err)
	}
	if g.HotLen() < 1 {
		t.Fatal("hot region rounded to zero")
	}
	g.Next() // must not panic
}

func TestUniformCoversRange(t *testing.T) {
	g, err := NewUniform(16, rng())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for i := 0; i < 2000; i++ {
		a := g.Next()
		if a < 0 || a >= 16 {
			t.Fatalf("address %d out of range", a)
		}
		seen[a] = true
	}
	if len(seen) != 16 {
		t.Fatalf("uniform over 16 hit only %d addresses in 2000 draws", len(seen))
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, rng()); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := NewUniform(4, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestSequentialWraps(t *testing.T) {
	g, err := NewSequential(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("Next()[%d] = %d, want %d", i, got, w)
		}
	}
	if _, err := NewSequential(0); err == nil {
		t.Error("accepted n=0")
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := NewZipf(100, 1.0, rng())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		a := g.Next()
		if a < 0 || a >= 100 {
			t.Fatalf("address %d out of range", a)
		}
		counts[a]++
	}
	// Rank 0 should dominate rank 50 heavily under s=1.
	if counts[0] < 5*counts[50] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1, rng()); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := NewZipf(10, 0, rng()); err == nil {
		t.Error("accepted s=0")
	}
	if _, err := NewZipf(10, 1, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestReplay(t *testing.T) {
	g, err := NewReplay([]int64{5, 9, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 9, 2, 5}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("Next()[%d] = %d, want %d", i, got, w)
		}
	}
	if _, err := NewReplay(nil); err == nil {
		t.Error("accepted empty trace")
	}
}

func TestReplayCopiesInput(t *testing.T) {
	trace := []int64{1, 2, 3}
	g, _ := NewReplay(trace)
	trace[0] = 99
	if got := g.Next(); got != 1 {
		t.Fatalf("Replay aliases caller's slice: got %d", got)
	}
}

func TestTake(t *testing.T) {
	g, _ := NewSequential(10)
	got := Take(g, 4)
	for i, w := range []int64{0, 1, 2, 3} {
		if got[i] != w {
			t.Fatalf("Take = %v", got)
		}
	}
}

func TestGeneratorNames(t *testing.T) {
	r := rng()
	h, _ := NewHotspot(10, 0.8, 0.2, r)
	u, _ := NewUniform(10, r)
	s, _ := NewSequential(10)
	z, _ := NewZipf(10, 1, r)
	p, _ := NewReplay([]int64{1})
	for _, g := range []Generator{h, u, s, z, p} {
		if g.Name() == "" {
			t.Errorf("%T has empty name", g)
		}
	}
}
