// Package workload generates the request traces the paper evaluates
// with, most importantly the 80/20 hotspot trace of §5.2.1: "80% of
// chance it will distribute in a certain area, and 20% of chance it
// requests a random data". Uniform, Zipf, sequential and replay
// generators support the ablation benches.
package workload

import (
	"fmt"
	"math"

	"repro/internal/blockcipher"
)

// Generator produces a stream of logical block addresses over [0, N).
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Next returns the next address.
	Next() int64
}

// Hotspot is the paper's trace: with probability HotFrac the address
// falls uniformly inside a hot region of HotSize·N blocks; otherwise
// it is uniform over the whole data set.
type Hotspot struct {
	n       int64
	hotLen  int64
	hotFrac float64
	rng     *blockcipher.RNG
}

// NewHotspot builds the paper's 80/20 generator: hotFrac 0.8 of
// requests hit a region of hotSize (fraction, e.g. 0.2) of the data
// set.
func NewHotspot(n int64, hotFrac, hotSize float64, rng *blockcipher.RNG) (*Hotspot, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: n must be positive, got %d", n)
	}
	if hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("workload: hotFrac %v out of [0,1]", hotFrac)
	}
	if hotSize <= 0 || hotSize > 1 {
		return nil, fmt.Errorf("workload: hotSize %v out of (0,1]", hotSize)
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	hotLen := int64(float64(n) * hotSize)
	if hotLen < 1 {
		hotLen = 1
	}
	return &Hotspot{n: n, hotLen: hotLen, hotFrac: hotFrac, rng: rng}, nil
}

// Name implements Generator.
func (h *Hotspot) Name() string { return "hotspot" }

// Next implements Generator.
func (h *Hotspot) Next() int64 {
	if h.rng.Float64() < h.hotFrac {
		return h.rng.Int63n(h.hotLen)
	}
	return h.rng.Int63n(h.n)
}

// HotLen returns the size of the hot region in blocks.
func (h *Hotspot) HotLen() int64 { return h.hotLen }

// Uniform draws addresses uniformly over [0, N).
type Uniform struct {
	n   int64
	rng *blockcipher.RNG
}

// NewUniform builds a uniform generator.
func NewUniform(n int64, rng *blockcipher.RNG) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: n must be positive, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	return &Uniform{n: n, rng: rng}, nil
}

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// Next implements Generator.
func (u *Uniform) Next() int64 { return u.rng.Int63n(u.n) }

// Sequential sweeps the address space in order, wrapping around.
type Sequential struct {
	n    int64
	next int64
}

// NewSequential builds a sequential sweep generator.
func NewSequential(n int64) (*Sequential, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: n must be positive, got %d", n)
	}
	return &Sequential{n: n}, nil
}

// Name implements Generator.
func (s *Sequential) Name() string { return "sequential" }

// Next implements Generator.
func (s *Sequential) Next() int64 {
	v := s.next
	s.next = (s.next + 1) % s.n
	return v
}

// Zipf draws addresses with the classic Zipf(s) popularity skew using
// inverse-CDF sampling over a precomputed table.
type Zipf struct {
	cdf []float64
	rng *blockcipher.RNG
}

// NewZipf builds a Zipf generator with exponent s > 0 over [0, n).
// Address 0 is the most popular.
func NewZipf(n int64, s float64, rng *blockcipher.RNG) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: n must be positive, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: zipf exponent must be positive, got %v", s)
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := int64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}, nil
}

// Name implements Generator.
func (z *Zipf) Name() string { return "zipf" }

// Next implements Generator.
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

// Replay yields a fixed recorded trace, then wraps around.
type Replay struct {
	trace []int64
	next  int
}

// NewReplay wraps a recorded address trace.
func NewReplay(trace []int64) (*Replay, error) {
	if len(trace) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	owned := make([]int64, len(trace))
	copy(owned, trace)
	return &Replay{trace: owned}, nil
}

// Name implements Generator.
func (r *Replay) Name() string { return "replay" }

// Next implements Generator.
func (r *Replay) Next() int64 {
	v := r.trace[r.next]
	r.next = (r.next + 1) % len(r.trace)
	return v
}

// Take materialises the next k addresses from g.
func Take(g Generator, k int) []int64 {
	out := make([]int64, k)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
