package pathoram

import (
	"errors"
	"fmt"

	"repro/internal/posmap"
	"repro/internal/stash"
)

// ErrNotExportable is returned by ExportState when the position map is
// not the in-controller posmap.PositionMap (the recursive construction
// stores positions inside other ORAMs, which snapshot as devices, not
// as a leaf table).
var ErrNotExportable = errors.New("pathoram: position store is not exportable")

// ExportState returns the instance's control state for a snapshot: the
// position-map leaf table, copies of the stash contents, and the real
// block count. The tree contents themselves live on the device and are
// captured by the caller (raw reads of every slot).
func (o *ORAM) ExportState() (leaves []int64, blocks []stash.Block, real int64, err error) {
	pm, ok := o.pm.(*posmap.PositionMap)
	if !ok {
		return nil, nil, 0, ErrNotExportable
	}
	leaves = pm.Export()
	for _, addr := range o.stash.Addrs() {
		data, _ := o.stash.Get(addr)
		owned := make([]byte, len(data))
		copy(owned, data)
		blocks = append(blocks, stash.Block{Addr: addr, Data: owned})
	}
	return leaves, blocks, o.real, nil
}

// ImportState installs a previously Exported control state. The caller
// restores the device contents separately (raw writes of every slot);
// ImportState only rebuilds the trusted in-controller structures.
func (o *ORAM) ImportState(leaves []int64, blocks []stash.Block, real int64) error {
	pm, ok := o.pm.(*posmap.PositionMap)
	if !ok {
		return ErrNotExportable
	}
	if err := pm.Import(leaves); err != nil {
		return err
	}
	for _, b := range blocks {
		if err := o.checkAddr(b.Addr); err != nil {
			return err
		}
		if len(b.Data) != o.cfg.BlockSize {
			return fmt.Errorf("pathoram: import: block %d payload %d bytes, want %d", b.Addr, len(b.Data), o.cfg.BlockSize)
		}
		owned := make([]byte, len(b.Data))
		copy(owned, b.Data)
		if err := o.stash.Put(b.Addr, owned); err != nil {
			return err
		}
	}
	if real < 0 || real > o.Capacity() {
		return fmt.Errorf("pathoram: import: real count %d out of [0,%d]", real, o.Capacity())
	}
	o.real = real
	return nil
}
