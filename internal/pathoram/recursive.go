package pathoram

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/oramtree"
	"repro/internal/posmap"
)

// This file implements the recursive position map of Stefanov et al.
// The paper evaluates the "naive setting (no recursive)" and lists
// position-map optimisations as directly applicable to H-ORAM (§5.3);
// this is that extension: instead of holding N leaf labels in trusted
// memory, the map is packed into blocks and stored in a smaller Path
// ORAM, whose own map recurses again, until the top map is below a
// cutoff and lives in the controller. Trusted state drops from O(N)
// to O(cutoff) at the price of extra map-ORAM path accesses per
// logical access.

// DeviceFactory allocates backing storage for one recursion level.
// The harness passes a closure that builds a device.Sim on the right
// clock and latency profile.
type DeviceFactory func(slotSize int, slots int64) (device.Device, error)

// RecursiveConfig parameterises NewRecursive.
type RecursiveConfig struct {
	// Config is the data ORAM's configuration; its Positions field is
	// ignored (the recursion supplies it).
	Config
	// EntriesPerBlock is how many leaf labels pack into one map block
	// (map blocks are EntriesPerBlock·8 bytes). Zero selects
	// BlockSize/8 capped at 64.
	EntriesPerBlock int
	// Cutoff is the map size at which recursion stops and the map
	// stays in trusted memory. Zero selects 64 entries.
	Cutoff int64
}

// Recursive is a Path ORAM whose position map is itself stored in
// ORAMs. It exposes the same access API as ORAM.
type Recursive struct {
	*ORAM          // the data ORAM
	maps   []*ORAM // map ORAMs, innermost (largest) first
	levels int     // number of map levels
	topLen int64   // entries kept in trusted memory
}

// MapLevels returns the number of ORAM-backed map levels.
func (r *Recursive) MapLevels() int { return r.levels }

// TrustedEntries returns how many position entries remain in trusted
// memory (the top-level plain map).
func (r *Recursive) TrustedEntries() int64 { return r.topLen }

// MapORAM returns the i-th map ORAM (0 = the map of the data ORAM).
func (r *Recursive) MapORAM(i int) *ORAM { return r.maps[i] }

// NewRecursive builds the recursion. Each level's tree is allocated
// through newDevice.
func NewRecursive(cfg RecursiveConfig, newDevice DeviceFactory) (*Recursive, error) {
	if err := cfg.Config.validate(); err != nil {
		return nil, err
	}
	if newDevice == nil {
		return nil, errors.New("pathoram: nil device factory")
	}
	entries := cfg.EntriesPerBlock
	if entries == 0 {
		entries = cfg.BlockSize / 8
		if entries > 64 {
			entries = 64
		}
	}
	if entries < 2 {
		return nil, fmt.Errorf("pathoram: EntriesPerBlock %d must be ≥ 2 (or BlockSize ≥ 16)", entries)
	}
	cutoff := cfg.Cutoff
	if cutoff == 0 {
		cutoff = 64
	}

	// Plan the levels: level 0 serves the data ORAM's Blocks entries.
	var sizes []int64 // entry counts per ORAM-backed map level
	need := cfg.Blocks
	for need > cutoff {
		sizes = append(sizes, need)
		need = (need + int64(entries) - 1) / int64(entries) // blocks of the map ORAM
	}

	r := &Recursive{levels: len(sizes), topLen: need}

	// Build from the top (smallest) down so each level's Positions is
	// ready when the level below needs it.
	r.maps = make([]*ORAM, len(sizes))
	for i := len(sizes) - 1; i >= 0; i-- {
		mapBlocks := (sizes[i] + int64(entries) - 1) / int64(entries)
		mapCfg := Config{
			Blocks:    mapBlocks,
			BlockSize: entries * 8,
			Z:         cfg.Z,
			Sealer:    cfg.Sealer,
			RNG:       cfg.RNG.Fork(fmt.Sprintf("map-oram-%d", i)),
		}
		// Position store for THIS map ORAM: either the trusted top map
		// (first-built level) or the next-smaller map ORAM.
		geomCapacity := mapCfg.Capacity
		if geomCapacity == 0 {
			geomCapacity = 2 * mapBlocks
		}
		if i == len(sizes)-1 {
			// Trusted plain map sized for this ORAM's leaf domain.
			geom, err := geometryFor(geomCapacity, cfg.Z)
			if err != nil {
				return nil, err
			}
			pm, err := posmap.NewPositionMap(mapBlocks, geom.Leaves(), cfg.RNG.Fork("trusted-top"))
			if err != nil {
				return nil, err
			}
			mapCfg.Positions = pm
			r.topLen = mapBlocks
		} else {
			geom, err := geometryFor(geomCapacity, cfg.Z)
			if err != nil {
				return nil, err
			}
			mapCfg.Positions = &oramPositions{
				oram:    r.maps[i+1],
				entries: int64(entries),
				leaves:  geom.Leaves(),
				rng:     cfg.RNG.Fork(fmt.Sprintf("map-remap-%d", i)),
			}
		}
		dev, err := newDevice(mapCfg.SlotSize(), treeSlotsFor(geomCapacity, cfg.Z))
		if err != nil {
			return nil, err
		}
		m, err := New(mapCfg, dev)
		if err != nil {
			return nil, err
		}
		if err := initNoLeaf(m, entries); err != nil {
			return nil, err
		}
		r.maps[i] = m
	}

	// Finally the data ORAM, with its positions in maps[0] (or the
	// placeholder trusted map when the whole thing fits the cutoff).
	dataCfg := cfg.Config
	dataCapacity := dataCfg.Capacity
	if dataCapacity == 0 {
		dataCapacity = 2 * dataCfg.Blocks
	}
	geom, err := geometryFor(dataCapacity, cfg.Z)
	if err != nil {
		return nil, err
	}
	if len(sizes) > 0 {
		dataCfg.Positions = &oramPositions{
			oram:    r.maps[0],
			entries: int64(entries),
			leaves:  geom.Leaves(),
			rng:     cfg.RNG.Fork("data-remap"),
		}
	} else {
		pm, err := posmap.NewPositionMap(cfg.Blocks, geom.Leaves(), cfg.RNG.Fork("flat"))
		if err != nil {
			return nil, err
		}
		dataCfg.Positions = pm
		r.topLen = cfg.Blocks
	}
	dataDev, err := newDevice(dataCfg.SlotSize(), treeSlotsFor(dataCapacity, cfg.Z))
	if err != nil {
		return nil, err
	}
	data, err := New(dataCfg, dataDev)
	if err != nil {
		return nil, err
	}
	r.ORAM = data
	return r, nil
}

// initNoLeaf writes a NoLeaf-filled payload into every map block so an
// unread entry decodes as "unmapped" rather than leaf 0.
func initNoLeaf(m *ORAM, entries int) error {
	payload := make([]byte, entries*8)
	for e := 0; e < entries; e++ {
		binary.BigEndian.PutUint64(payload[e*8:], ^uint64(0))
	}
	for b := int64(0); b < m.cfg.Blocks; b++ {
		if err := m.Write(b, payload); err != nil {
			return err
		}
	}
	return nil
}

// oramPositions adapts a map ORAM into a PositionStore: entry addr
// lives at offset (addr mod entries) of map block addr/entries, as a
// big-endian uint64 with all-ones meaning NoLeaf.
type oramPositions struct {
	oram    *ORAM
	entries int64
	leaves  int64
	rng     *blockcipher.RNG
}

func (s *oramPositions) locate(addr int64) (blk int64, off int) {
	return addr / s.entries, int(addr%s.entries) * 8
}

// Get implements PositionStore.
func (s *oramPositions) Get(addr int64) (int64, error) {
	blk, off := s.locate(addr)
	data, err := s.oram.Read(blk)
	if err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(data[off:])
	if v == ^uint64(0) {
		return posmap.NoLeaf, nil
	}
	return int64(v), nil
}

// Set implements PositionStore with a read-modify-write pair of map
// ORAM accesses.
func (s *oramPositions) Set(addr, leaf int64) error {
	blk, off := s.locate(addr)
	data, err := s.oram.Read(blk)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint64(data[off:], uint64(leaf))
	return s.oram.Write(blk, data)
}

// Remap implements PositionStore.
func (s *oramPositions) Remap(addr int64) (int64, error) {
	leaf := s.rng.Int63n(s.leaves)
	if err := s.Set(addr, leaf); err != nil {
		return 0, err
	}
	return leaf, nil
}

// Clear implements PositionStore by rewriting every map block with
// NoLeaf entries.
func (s *oramPositions) Clear() {
	payload := make([]byte, s.entries*8)
	for e := int64(0); e < s.entries; e++ {
		binary.BigEndian.PutUint64(payload[e*8:], ^uint64(0))
	}
	for b := int64(0); b < s.oram.cfg.Blocks; b++ {
		// Best effort: PositionStore.Clear cannot return an error; a
		// failing simulated device here would already have failed the
		// surrounding operation.
		_ = s.oram.Write(b, payload)
	}
}

// geometryFor mirrors New's geometry derivation for planning.
func geometryFor(capacity int64, z int) (oramtree.Geometry, error) {
	return oramtree.ForCapacity(capacity, z)
}

// treeSlotsFor returns the device slots a tree of the given capacity
// needs.
func treeSlotsFor(capacity int64, z int) int64 {
	g, err := oramtree.ForCapacity(capacity, z)
	if err != nil {
		return capacity * 2
	}
	return g.Slots()
}
