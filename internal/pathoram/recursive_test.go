package pathoram

import (
	"bytes"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/simclock"
)

func dramFactory(clk *simclock.Clock) DeviceFactory {
	return func(slotSize int, slots int64) (device.Device, error) {
		return device.New(device.DRAM(), slotSize, slots, clk)
	}
}

func newRecursive(t *testing.T, blocks int64, blockSize int, cutoff int64) *Recursive {
	t.Helper()
	cfg := RecursiveConfig{
		Config: testConfig(blocks, blockSize),
		Cutoff: cutoff,
	}
	r, err := NewRecursive(cfg, dramFactory(simclock.New()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecursiveValidation(t *testing.T) {
	clk := simclock.New()
	cfg := RecursiveConfig{Config: testConfig(64, 32)}
	if _, err := NewRecursive(cfg, nil); err == nil {
		t.Error("accepted nil device factory")
	}
	bad := cfg
	bad.Blocks = 0
	if _, err := NewRecursive(bad, dramFactory(clk)); err == nil {
		t.Error("accepted zero blocks")
	}
	bad = cfg
	bad.Config.BlockSize = 8 // < 16 → fewer than 2 entries per block
	if _, err := NewRecursive(bad, dramFactory(clk)); err == nil {
		t.Error("accepted block size too small for packing")
	}
}

func TestRecursiveLevelPlan(t *testing.T) {
	// 1024 blocks, 32-byte blocks → 4 entries per map block, cutoff 16:
	// map level sizes 1024 → 256 → 64 → 16 ≤ 16, so 3 ORAM-backed
	// levels and a trusted top of 16 entries (16/4 = 4 map blocks).
	r := newRecursive(t, 1024, 32, 16)
	if r.MapLevels() != 3 {
		t.Fatalf("MapLevels() = %d, want 3", r.MapLevels())
	}
	if r.TrustedEntries() > 16 {
		t.Fatalf("TrustedEntries() = %d, want ≤ 16", r.TrustedEntries())
	}
	for i := 0; i < r.MapLevels(); i++ {
		if r.MapORAM(i) == nil {
			t.Fatalf("MapORAM(%d) nil", i)
		}
	}
}

func TestRecursiveNoRecursionBelowCutoff(t *testing.T) {
	r := newRecursive(t, 32, 32, 64)
	if r.MapLevels() != 0 {
		t.Fatalf("MapLevels() = %d, want 0 (fits cutoff)", r.MapLevels())
	}
	if r.TrustedEntries() != 32 {
		t.Fatalf("TrustedEntries() = %d, want 32", r.TrustedEntries())
	}
}

func TestRecursiveRoundTrip(t *testing.T) {
	r := newRecursive(t, 512, 32, 16)
	if r.MapLevels() < 2 {
		t.Fatalf("want deep recursion, got %d levels", r.MapLevels())
	}
	want := payload(32, 0x5A)
	if err := r.Write(77, want); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(77)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip through recursion failed")
	}
	// Unwritten blocks still read zeros.
	got, err = r.Read(400)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("unwritten block not zero through recursion")
	}
}

func TestRecursiveChurn(t *testing.T) {
	const blocks = 256
	r := newRecursive(t, blocks, 32, 16)
	version := make(map[int64]byte)
	rng := blockcipher.NewRNGFromString("rec-churn")
	for i := 0; i < 300; i++ {
		a := rng.Int63n(blocks)
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			if err := r.Write(a, payload(32, v)); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			version[a] = v
		} else {
			got, err := r.Read(a)
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			want := byte(0)
			if v, ok := version[a]; ok {
				want = v
			}
			if !bytes.Equal(got, payload(32, want)) {
				t.Fatalf("iteration %d: Read(%d) corrupted", i, a)
			}
		}
	}
}

func TestRecursiveMapAccessesHappen(t *testing.T) {
	// Each data access must touch the map ORAMs: their access counters
	// advance.
	r := newRecursive(t, 512, 32, 16)
	before := r.MapORAM(0).Stats().Accesses
	if _, err := r.Read(3); err != nil {
		t.Fatal(err)
	}
	after := r.MapORAM(0).Stats().Accesses
	if after <= before {
		t.Fatal("data access did not touch the level-0 map ORAM")
	}
}

func TestRecursiveTrustedStateShrinks(t *testing.T) {
	// The whole point: trusted entries ≪ N.
	r := newRecursive(t, 2048, 64, 64)
	if r.TrustedEntries()*20 > 2048 {
		t.Fatalf("trusted entries %d not ≪ N=2048", r.TrustedEntries())
	}
}

func BenchmarkRecursiveVsFlat(b *testing.B) {
	for _, mode := range []string{"flat", "recursive"} {
		b.Run(mode, func(b *testing.B) {
			clk := simclock.New()
			cfg := testConfig(2048, 64)
			var o interface {
				Read(int64) ([]byte, error)
			}
			if mode == "flat" {
				dev, err := device.New(device.DRAM(), cfg.SlotSize(), 8192, clk)
				if err != nil {
					b.Fatal(err)
				}
				oo, err := New(cfg, dev)
				if err != nil {
					b.Fatal(err)
				}
				o = oo
			} else {
				rr, err := NewRecursive(RecursiveConfig{Config: cfg, Cutoff: 64}, dramFactory(clk))
				if err != nil {
					b.Fatal(err)
				}
				o = rr
			}
			rng := blockcipher.NewRNGFromString("bench-" + mode)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.Read(rng.Int63n(2048)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
