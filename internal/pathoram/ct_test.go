// Constant-time mode tests: the CT stash/posmap/eviction path must be
// a pure re-implementation of the default trusted-memory computation —
// same results, same stash occupancy, and, decisively, a byte-for-byte
// identical SEALED device trace. The trace recorder below captures
// every slot read and write at the device boundary (below the sealer),
// so equality there proves ConstantTime changes nothing an adversary
// on the device bus can see.
package pathoram

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/device"
	"repro/internal/simclock"
	"repro/internal/stash"
)

// devEvent is one device access: direction, slot, and the sealed
// payload bytes that crossed the bus.
type devEvent struct {
	write bool
	slot  int64
	data  []byte
}

// recDev wraps a Device and logs every access with a payload copy. It
// deliberately implements ONLY device.Device so the vectored helpers
// fall back to the per-slot path and every transfer is observed.
type recDev struct {
	inner device.Backend
	log   []devEvent
}

func (r *recDev) Name() string        { return r.inner.Name() }
func (r *recDev) SlotSize() int       { return r.inner.SlotSize() }
func (r *recDev) Slots() int64        { return r.inner.Slots() }
func (r *recDev) Stats() device.Stats { return r.inner.Stats() }
func (r *recDev) Read(slot int64, dst []byte) error {
	if err := r.inner.Read(slot, dst); err != nil {
		return err
	}
	r.log = append(r.log, devEvent{write: false, slot: slot, data: bytes.Clone(dst[:r.inner.SlotSize()])})
	return nil
}
func (r *recDev) Write(slot int64, src []byte) error {
	r.log = append(r.log, devEvent{write: true, slot: slot, data: bytes.Clone(src)})
	return r.inner.Write(slot, src)
}

// newRecORAM builds an ORAM over a recording device.
func newRecORAM(t *testing.T, blocks int64, blockSize int, ct bool) (*ORAM, *recDev) {
	t.Helper()
	cfg := testConfig(blocks, blockSize)
	cfg.ConstantTime = ct
	clk := simclock.New()
	dev, err := device.New(device.DRAM(), cfg.SlotSize(), 8*2*cfg.Blocks, clk)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recDev{inner: dev}
	o, err := New(cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	return o, rec
}

// ctWorkload drives one ORAM through a deterministic mix of fresh
// reads, writes, overwrites, inserts, dummy accesses and membership
// probes, returning every byte the ORAM handed back. The mix is built
// to exercise the CT paths: repeated hot addresses keep blocks
// resident in the stash, cold addresses force tree round trips, and
// the Insert/Has calls run the stash-only fast paths.
func ctWorkload(t *testing.T, o *ORAM) []byte {
	t.Helper()
	var out bytes.Buffer
	n := o.cfg.Blocks
	// Seed some state, including an Insert (stash-direct).
	for i := int64(0); i < n/2; i++ {
		if err := o.Write(i, payload(o.cfg.BlockSize, byte(i*7))); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Insert(n-1, payload(o.cfg.BlockSize, 0xEE)); err != nil {
		t.Fatal(err)
	}
	// lcg is a fixed deterministic sequence, identical per mode.
	lcg := uint64(12345)
	next := func(mod int64) int64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int64((lcg >> 33) % uint64(mod))
	}
	for i := 0; i < 300; i++ {
		addr := next(n)
		switch next(4) {
		case 0:
			got, err := o.Read(addr)
			if err != nil {
				t.Fatal(err)
			}
			out.Write(got)
		case 1:
			if err := o.Write(addr, payload(o.cfg.BlockSize, byte(i))); err != nil {
				t.Fatal(err)
			}
		case 2:
			ok, err := o.Has(addr)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&out, "has(%d)=%v;", addr, ok)
		case 3:
			if err := o.DummyAccess(); err != nil {
				t.Fatal(err)
			}
		}
	}
	fmt.Fprintf(&out, "stash=%d peak=%d real=%d", o.StashLen(), o.StashPeak(), o.RealCount())
	return out.Bytes()
}

// TestConstantTimeTraceByteIdentical is the tentpole's core claim:
// with ConstantTime on, the sealed device trace — every slot touched,
// in order, with the exact ciphertext bytes — equals the default
// mode's, so the hardening is invisible below the trust boundary.
func TestConstantTimeTraceByteIdentical(t *testing.T) {
	oDef, recDef := newRecORAM(t, 64, 32, false)
	oCT, recCT := newRecORAM(t, 64, 32, true)

	outDef := ctWorkload(t, oDef)
	outCT := ctWorkload(t, oCT)
	if !bytes.Equal(outDef, outCT) {
		t.Fatalf("workload results differ between modes:\ndefault: %q\nct:      %q", outDef, outCT)
	}

	if len(recDef.log) != len(recCT.log) {
		t.Fatalf("device event counts differ: default %d, ct %d", len(recDef.log), len(recCT.log))
	}
	for i := range recDef.log {
		d, c := recDef.log[i], recCT.log[i]
		if d.write != c.write || d.slot != c.slot {
			t.Fatalf("event %d: default %v slot %d, ct %v slot %d", i, d.write, d.slot, c.write, c.slot)
		}
		if !bytes.Equal(d.data, c.data) {
			t.Fatalf("event %d (write=%v slot=%d): sealed payloads differ", i, d.write, d.slot)
		}
	}
	if len(recDef.log) == 0 {
		t.Fatal("recorder captured no device events")
	}
}

// TestConstantTimeDrainAndStateRoundTrip pins DrainAll and the
// export/import path (snapshot capture) to the default mode.
func TestConstantTimeDrainAndStateRoundTrip(t *testing.T) {
	oDef, _ := newRecORAM(t, 32, 16, false)
	oCT, _ := newRecORAM(t, 32, 16, true)
	for _, o := range []*ORAM{oDef, oCT} {
		for i := int64(0); i < 20; i++ {
			if err := o.Write(i, payload(16, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
	}

	lDef, bDef, rDef, err := oDef.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	lCT, bCT, rCT, err := oCT.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if rDef != rCT || len(lDef) != len(lCT) || len(bDef) != len(bCT) {
		t.Fatalf("export shapes differ: real %d/%d, leaves %d/%d, blocks %d/%d",
			rDef, rCT, len(lDef), len(lCT), len(bDef), len(bCT))
	}
	for i := range lDef {
		if lDef[i] != lCT[i] {
			t.Fatalf("leaf %d: %d vs %d", i, lDef[i], lCT[i])
		}
	}
	cmp := func(a, b []stash.Block) {
		t.Helper()
		for i := range a {
			if a[i].Addr != b[i].Addr || !bytes.Equal(a[i].Data, b[i].Data) {
				t.Fatalf("stash block %d differs: addr %d vs %d", i, a[i].Addr, b[i].Addr)
			}
		}
	}
	cmp(bDef, bCT)

	// Re-import each ORAM's own export (the restore path pairs the
	// state with the matching device image), then drain everything and
	// compare the full block sets.
	if err := oDef.ImportState(lDef, bDef, rDef); err != nil {
		t.Fatal(err)
	}
	if err := oCT.ImportState(lCT, bCT, rCT); err != nil {
		t.Fatal(err)
	}
	dDef, err := oDef.DrainAll()
	if err != nil {
		t.Fatal(err)
	}
	dCT, err := oCT.DrainAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(dDef) != len(dCT) {
		t.Fatalf("DrainAll counts differ: %d vs %d", len(dDef), len(dCT))
	}
	cmp(dDef, dCT)
	if len(dDef) != 20 {
		t.Fatalf("DrainAll returned %d blocks, want 20", len(dDef))
	}
}

// TestConstantTimeRejectsExternalPositions: the CT path owns the
// position map (it needs the scan variant), so Config.Positions and
// ConstantTime are mutually exclusive.
func TestConstantTimeRejectsExternalPositions(t *testing.T) {
	cfg := testConfig(16, 32)
	cfg.ConstantTime = true
	cfg.Positions = fakePositions{}
	clk := simclock.New()
	dev, err := device.New(device.DRAM(), cfg.SlotSize(), 1024, clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg, dev); err == nil {
		t.Fatal("New accepted ConstantTime with an external position map")
	}
}

// fakePositions is a stub PositionStore for the rejection test.
type fakePositions struct{}

func (fakePositions) Get(int64) (int64, error)   { return 0, nil }
func (fakePositions) Set(int64, int64) error     { return nil }
func (fakePositions) Remap(int64) (int64, error) { return 0, nil }
func (fakePositions) Clear()                     {}
