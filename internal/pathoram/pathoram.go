// Package pathoram implements the non-recursive Path ORAM of Stefanov
// et al., the scheme the paper both builds on (H-ORAM's in-memory
// cache tier is a Path ORAM tree) and compares against (the tree-top
// cache baseline is a Path ORAM spanning memory and storage).
//
// The tree lives on a device.Device: bucket b occupies device slots
// [b·Z, (b+1)·Z), every slot holding one sealed block record. Real and
// dummy records seal to the same length, so an adversary watching the
// device sees only which buckets are touched — and Path ORAM touches
// exactly one random root-to-leaf path per access.
package pathoram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"runtime"

	"repro/internal/blockcipher"
	"repro/internal/ctops"
	"repro/internal/device"
	"repro/internal/oramtree"
	"repro/internal/posmap"
	"repro/internal/stash"
)

// Op selects the access type.
type Op uint8

// Access operations.
const (
	OpRead Op = iota
	OpWrite
)

// dummyAddr marks a slot holding no real block.
const dummyAddr = int64(-1)

// headerSize is the per-slot plaintext header: the block address.
const headerSize = 8

// Config parameterises a Path ORAM instance.
type Config struct {
	// Blocks is the number of addressable logical blocks N.
	Blocks int64
	// BlockSize is the plaintext payload size in bytes.
	BlockSize int
	// Z is the bucket size; the paper uses Z = 4.
	Z int
	// Capacity optionally overrides the tree's slot capacity; zero
	// means the standard 2·Blocks (≤ 50% utilisation). H-ORAM sizes
	// its memory tree by the memory budget n rather than by N.
	Capacity int64
	// Sealer encrypts slots; required.
	Sealer blockcipher.Sealer
	// RNG drives leaf assignment and must be dedicated to this ORAM.
	RNG *blockcipher.RNG
	// StashLimit bounds the stash (0 = unbounded; experiments measure
	// the peak instead of failing).
	StashLimit int
	// SealWorkers bounds the worker pool that parallelises the path
	// seal/unseal batches. 0 sizes the pool from GOMAXPROCS; 1 forces
	// serial crypto. Nonces are drawn serially either way, so the
	// sealed bytes are identical at any worker count.
	SealWorkers int
	// Positions overrides where the position map lives. Nil keeps the
	// classic in-controller map (the paper's "naive setting, no
	// recursive"); the recursive construction plugs in a store backed
	// by smaller ORAMs here.
	Positions PositionStore
	// ConstantTime hardens the controller's trusted-memory work
	// against a co-located timing adversary: the stash becomes a dense
	// slot array scanned full-length in fixed order on every
	// operation, the position map switches to scan lookups, and
	// eviction selects blocks with branchless masks instead of
	// early-exit loops. Device traffic (slots, order, sealed bytes and
	// the RNG streams behind them) is byte-identical to the default
	// mode; only in-memory computation changes. Requires the built-in
	// position map (Positions must be nil).
	ConstantTime bool
}

// PositionStore is the position-map dependency of the ORAM: logical
// address → current leaf. posmap.PositionMap satisfies it natively;
// RecursivePositions implements it on top of smaller ORAMs.
type PositionStore interface {
	// Get returns the leaf addr maps to, or posmap.NoLeaf.
	Get(addr int64) (int64, error)
	// Set pins addr to leaf (posmap.NoLeaf unmaps it).
	Set(addr, leaf int64) error
	// Remap assigns addr a fresh uniform leaf and returns it.
	Remap(addr int64) (int64, error)
	// Clear unmaps every address.
	Clear()
}

func (c Config) validate() error {
	if c.Blocks <= 0 {
		return fmt.Errorf("pathoram: Blocks must be positive, got %d", c.Blocks)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("pathoram: BlockSize must be positive, got %d", c.BlockSize)
	}
	if c.Z <= 0 {
		return fmt.Errorf("pathoram: Z must be positive, got %d", c.Z)
	}
	if c.Sealer == nil {
		return errors.New("pathoram: Sealer is required")
	}
	if c.RNG == nil {
		return errors.New("pathoram: RNG is required")
	}
	return nil
}

// SlotSize returns the sealed on-device slot size implied by cfg.
func (c Config) SlotSize() int { return headerSize + c.BlockSize + c.Sealer.Overhead() }

// Stats counts ORAM-level work (device-level traffic is on the device).
type Stats struct {
	Accesses     int64 // logical accesses served
	DummyAccess  int64 // padding path accesses (no logical block)
	BucketReads  int64 // buckets fetched
	BucketWrites int64 // buckets written back
	Inserts      int64 // blocks injected directly into the stash
}

// ORAM is a device-backed Path ORAM. Not safe for concurrent use.
type ORAM struct {
	cfg   Config
	geom  oramtree.Geometry
	dev   device.Device
	pm    PositionStore
	stash stash.Store
	real  int64 // blocks currently held (tree + stash)
	stats Stats

	// Constant-time mode state: the concrete stash and position map
	// (the scan-based entry points live on the concrete types), plus
	// the fixed-length eviction scratch.
	ct         *stash.CT
	pmCT       *posmap.PositionMap
	ctAddrs    []int64 // full stash snapshot (Empty sentinels included)
	ctLeaves   []int64 // joined leaf per snapshot slot
	ctConsumed []int   // slots taken by the current writePath
	ctElig     []int   // per-level eligibility masks
	ctRanks    []int   // per-level eligible-prefix counts

	// Steady-state scratch: one path's worth of slots, sealed records
	// and plaintexts, allocated once so accesses allocate nothing.
	workers    int      // seal worker-pool bound
	ptSize     int      // headerSize + BlockSize
	dummyPt    []byte   // sealed-dummy plaintext; read-only after init
	pathSlots  []int64  // slot vector of the in-flight path or chunk
	pathSealed [][]byte // sealed-record slab views
	pathPt     [][]byte // plaintext slab views (read phase / encodes)
	sealSrc    [][]byte // seal-batch inputs (pathPt entries or dummyPt)
	taken      [][]byte // stash payloads consumed by the current writePath
	free       [][]byte // recycled payload buffers for stash handoff
	evictAddrs []int64  // sorted stash snapshot for one writePath
}

// New builds a Path ORAM over dev and fills the tree with sealed
// dummies. The device must have exactly the geometry's slot count or
// more, with SlotSize matching cfg.SlotSize(). Initialisation uses the
// device's raw path when available (it is setup, not measured work).
func New(cfg Config, dev device.Device) (*ORAM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = 2 * cfg.Blocks
	}
	geom, err := oramtree.ForCapacity(capacity, cfg.Z)
	if err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, errors.New("pathoram: nil device")
	}
	if dev.SlotSize() != cfg.SlotSize() {
		return nil, fmt.Errorf("pathoram: device slot size %d, config needs %d", dev.SlotSize(), cfg.SlotSize())
	}
	if dev.Slots() < geom.Slots() {
		return nil, fmt.Errorf("pathoram: device has %d slots, tree needs %d", dev.Slots(), geom.Slots())
	}
	var pm PositionStore = cfg.Positions
	var pmCT *posmap.PositionMap
	if pm == nil {
		native, err := posmap.NewPositionMap(cfg.Blocks, geom.Leaves(), cfg.RNG.Fork("posmap"))
		if err != nil {
			return nil, err
		}
		pm, pmCT = native, native
	} else if cfg.ConstantTime {
		return nil, errors.New("pathoram: ConstantTime requires the built-in position map (Positions must be nil)")
	}
	var st stash.Store
	var ct *stash.CT
	if cfg.ConstantTime {
		pmCT.SetConstantTime(true)
		// The fixed scan length: the stash can never hold more real
		// blocks than the tree has slots, so the whole-tree bound is a
		// safe capacity when no explicit limit is configured.
		ctCap := cfg.StashLimit
		if ctCap == 0 {
			ctCap = int(geom.Slots())
		}
		ct = stash.NewConstantTime(ctCap, cfg.BlockSize)
		st = ct
	} else {
		st = stash.New(cfg.StashLimit)
	}
	o := &ORAM{
		cfg:     cfg,
		geom:    geom,
		dev:     dev,
		pm:      pm,
		pmCT:    pmCT,
		stash:   st,
		ct:      ct,
		workers: resolveWorkers(cfg.SealWorkers),
		ptSize:  headerSize + cfg.BlockSize,
	}
	if ct != nil {
		ctCap := ct.Capacity()
		o.ctAddrs = make([]int64, 0, ctCap)
		o.ctLeaves = make([]int64, ctCap)
		o.ctConsumed = make([]int, ctCap)
		o.ctElig = make([]int, ctCap)
		o.ctRanks = make([]int, ctCap)
	}
	o.dummyPt = make([]byte, o.ptSize)
	o.encodePt(o.dummyPt, dummyAddr, nil)
	pathLen := (geom.Levels + 1) * cfg.Z
	o.pathSlots = make([]int64, pathLen)
	o.pathSealed = slabViews(pathLen, cfg.SlotSize())
	o.pathPt = slabViews(pathLen, o.ptSize)
	o.sealSrc = make([][]byte, 0, pathLen)
	o.taken = make([][]byte, 0, pathLen)
	if err := o.clearTree(); err != nil {
		return nil, err
	}
	return o, nil
}

// resolveWorkers turns the SealWorkers knob into a pool bound: an
// explicit value wins, otherwise GOMAXPROCS capped at 8.
func resolveWorkers(configured int) int {
	if configured > 0 {
		return configured
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// slabViews carves one backing array into n fixed-size windows.
func slabViews(n, size int) [][]byte {
	backing := make([]byte, n*size)
	views := make([][]byte, n)
	for i := range views {
		views[i] = backing[i*size : (i+1)*size]
	}
	return views
}

// encodePt lays out one record plaintext: address header, payload,
// zero padding.
func (o *ORAM) encodePt(dst []byte, addr int64, payload []byte) {
	binary.BigEndian.PutUint64(dst[:headerSize], uint64(addr))
	n := copy(dst[headerSize:], payload)
	for i := headerSize + n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// newPayload returns an owned BlockSize copy of src, reusing a
// recycled buffer when one is free. Buffers handed to callers are
// never recycled; only payloads sealed back into the tree return to
// the free list.
func (o *ORAM) newPayload(src []byte) []byte {
	var buf []byte
	if n := len(o.free); n > 0 {
		buf = o.free[n-1]
		o.free = o.free[:n-1]
	} else {
		buf = make([]byte, o.cfg.BlockSize)
	}
	copy(buf, src)
	return buf
}

// rawWriter is the optional fast-path devices expose for unmeasured
// setup writes.
type rawWriter interface {
	WriteRaw(slot int64, src []byte) error
}

// clearTree seals a dummy into every slot of the tree, batch-sealing
// one path-sized chunk at a time through the worker pool (the chunked
// order keeps the nonce stream identical to a serial slot loop).
func (o *ORAM) clearTree() error {
	rw, hasRaw := o.dev.(rawWriter)
	chunk := int64(len(o.pathSealed))
	for lo := int64(0); lo < o.geom.Slots(); lo += chunk {
		hi := lo + chunk
		if hi > o.geom.Slots() {
			hi = o.geom.Slots()
		}
		n := int(hi - lo)
		src := o.sealSrc[:0]
		for i := 0; i < n; i++ {
			src = append(src, o.dummyPt)
		}
		o.sealSrc = src[:0]
		if err := blockcipher.SealBatch(o.cfg.Sealer, src, o.pathSealed[:n], o.workers); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var err error
			if hasRaw {
				err = rw.WriteRaw(lo+int64(i), o.pathSealed[i])
			} else {
				err = o.dev.Write(lo+int64(i), o.pathSealed[i])
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Geometry returns the tree geometry.
func (o *ORAM) Geometry() oramtree.Geometry { return o.geom }

// Stats returns ORAM-level counters.
func (o *ORAM) Stats() Stats { return o.stats }

// StashLen returns the current stash occupancy.
func (o *ORAM) StashLen() int { return o.stash.Len() }

// StashPeak returns the peak stash occupancy observed.
func (o *ORAM) StashPeak() int { return o.stash.Peak() }

// RealCount returns the number of real blocks currently held.
func (o *ORAM) RealCount() int64 { return o.real }

// Capacity returns the maximum number of real blocks this instance is
// meant to hold (half the tree's slots, the paper's 50% utilisation
// bound).
func (o *ORAM) Capacity() int64 { return o.geom.Slots() / 2 }

func (o *ORAM) checkAddr(addr int64) error {
	if addr < 0 || addr >= o.cfg.Blocks {
		return fmt.Errorf("pathoram: address %d out of range [0,%d)", addr, o.cfg.Blocks)
	}
	return nil
}

// readPath fetches every bucket on the path to leaf into the stash.
// Two phases over the path scratch: the device reads land in the
// sealed slab (charged per slot in the classic order), then one batch
// open fans the crypto across the worker pool and the real blocks are
// copied into stash-owned buffers.
func (o *ORAM) readPath(leaf int64) error {
	n := 0
	for _, bucket := range o.geom.Path(leaf) {
		base := o.geom.SlotBase(bucket)
		for z := 0; z < o.cfg.Z; z++ {
			o.pathSlots[n] = base + int64(z)
			n++
		}
		o.stats.BucketReads++
	}
	if err := device.ReadSlots(o.dev, o.pathSlots[:n], o.pathSealed[:n]); err != nil {
		return err
	}
	if err := blockcipher.OpenBatch(o.cfg.Sealer, o.pathSealed[:n], o.pathPt[:n], o.workers); err != nil {
		return fmt.Errorf("pathoram: path to leaf %d: %w", leaf, err)
	}
	if o.ct != nil {
		// Constant-time absorption: every slot of the path runs the
		// same masked Put, so which of them carried real blocks never
		// shows in the touch sequence.
		for i := 0; i < n; i++ {
			pt := o.pathPt[i]
			addr := int64(binary.BigEndian.Uint64(pt[:headerSize]))
			real := ctops.Eq64(addr, dummyAddr) ^ 1
			if err := o.ct.PutMasked(real, addr, pt[headerSize:]); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		pt := o.pathPt[i]
		addr := int64(binary.BigEndian.Uint64(pt[:headerSize]))
		if addr == dummyAddr {
			continue
		}
		if err := o.stash.Put(addr, o.newPayload(pt[headerSize:])); err != nil {
			return err
		}
	}
	return nil
}

// writePath evicts stash blocks back onto the path to leaf, deepest
// level first, padding every remaining slot with dummies. The
// selection pass stages each slot's plaintext (real payloads are
// encoded into the path slab, dummies point at the shared dummy
// plaintext), then one batch seal — nonce order identical to the
// serial slot loop — and per-slot device writes in the same order.
// Stash buffers consumed here are dead after sealing and return to
// the free list.
//
// The stash is snapshotted once per path: eviction only removes
// entries, so one sorted address list with consumed entries marked
// yields the same per-level candidates, in the same ascending order,
// as re-enumerating the stash at every level.
func (o *ORAM) writePath(leaf int64) error {
	if o.ct != nil {
		return o.ctWritePath(leaf)
	}
	path := o.geom.Path(leaf)
	n := 0
	src := o.sealSrc[:0]
	taken := o.taken[:0]
	addrs := o.stash.AppendAddrs(o.evictAddrs[:0])
	o.evictAddrs = addrs[:0]
	for level := o.geom.Levels; level >= 0; level-- {
		bucket := path[level]
		base := o.geom.SlotBase(bucket)
		placed := 0
		for i, addr := range addrs {
			if placed == o.cfg.Z {
				break
			}
			if addr == dummyAddr {
				continue // already evicted at a deeper level
			}
			blockLeaf, err := o.pm.Get(addr)
			if err != nil {
				return err
			}
			if blockLeaf == posmap.NoLeaf {
				continue
			}
			if o.geom.CommonLevel(blockLeaf, leaf) < level {
				continue
			}
			payload, _ := o.stash.Take(addr)
			addrs[i] = dummyAddr
			o.encodePt(o.pathPt[n], addr, payload)
			taken = append(taken, payload)
			src = append(src, o.pathPt[n])
			o.pathSlots[n] = base + int64(placed)
			n++
			placed++
		}
		for ; placed < o.cfg.Z; placed++ {
			src = append(src, o.dummyPt)
			o.pathSlots[n] = base + int64(placed)
			n++
		}
		o.stats.BucketWrites++
	}
	o.sealSrc = src[:0]
	o.taken = taken[:0]
	if err := blockcipher.SealBatch(o.cfg.Sealer, src, o.pathSealed[:n], o.workers); err != nil {
		return err
	}
	if err := device.WriteSlots(o.dev, o.pathSlots[:n], o.pathSealed[:n]); err != nil {
		return err
	}
	for _, buf := range taken {
		o.free = append(o.free, buf)
	}
	return nil
}

// ctCommonLevel is the branchless CommonLevel: bits.Len64 compiles to
// a count-leading-zeros instruction, and Len64(0) == 0 already yields
// the full-depth answer, so no equality branch is needed. Callers mask
// the result when a or b is not a valid leaf.
//
//horam:constant-time
//horam:secret a b
func ctCommonLevel(levels int, a, b int64) int {
	return levels - bits.Len64(uint64(a^b))
}

// ctWritePath is writePath under ConstantTime: the same eviction
// decisions (ascending-address candidates, deepest level first, up to
// Z per bucket, identical tie-breaks) computed with full-length
// fixed-order scans and branchless masks, so neither the stash
// occupancy nor which blocks are eligible shows in the touch sequence.
// The staged plaintexts, slot order and seal-nonce order are exactly
// the default path's, so the sealed device traffic is byte-identical.
//
// One snapshot of the stash and one scan-join against the position map
// serve the whole path, mirroring the default path's single sorted
// snapshot; consumed slots are marked in a mask and removed from the
// stash in a fixed number of masked passes at the end.
//
// The stash-address snapshot and the joined leaf assignments are the
// secrets here; the written path (leaf) is public device traffic.
//
//horam:constant-time
//horam:secret addrs leaves
func (o *ORAM) ctWritePath(leaf int64) error {
	capn := o.ct.Capacity()
	addrs := o.ct.SnapshotAddrs(o.ctAddrs[:0])
	o.ctAddrs = addrs[:0]
	leaves := o.ctLeaves[:capn]
	o.pmCT.GetBatch(addrs, leaves)
	consumed := o.ctConsumed[:capn]
	for i := range consumed {
		consumed[i] = 0
	}
	elig := o.ctElig[:capn]
	ranks := o.ctRanks[:capn]

	path := o.geom.Path(leaf)
	n := 0
	src := o.sealSrc[:0]
	for level := o.geom.Levels; level >= 0; level-- {
		base := o.geom.SlotBase(path[level])
		// Eligibility and rank of every candidate at this level. The
		// Empty sentinel joins to NoLeaf, so unoccupied slots are
		// masked out without a branch.
		r := 0
		for i := 0; i < capn; i++ {
			mapped := ctops.Eq64(leaves[i], posmap.NoLeaf) ^ 1
			cl := ctCommonLevel(o.geom.Levels, leaves[i], leaf)
			e := (consumed[i] ^ 1) & mapped & ctops.GeInt(cl, level)
			elig[i] = e
			ranks[i] = r
			r += e
		}
		// Slot z receives the z-th eligible candidate in ascending
		// address order (the snapshot is sorted), or a dummy when the
		// level has fewer than Z — the same packing as the default
		// path's take-in-order loop.
		for z := 0; z < o.cfg.Z; z++ {
			pt := o.pathPt[n]
			o.encodePt(pt, dummyAddr, nil)
			slotAddr := dummyAddr
			for i := 0; i < capn; i++ {
				m := elig[i] & ctops.EqInt(ranks[i], z)
				slotAddr = ctops.Select64(m, addrs[i], slotAddr)
				o.ct.CopySlotMasked(m, i, pt[headerSize:])
				consumed[i] |= m
			}
			binary.BigEndian.PutUint64(pt[:headerSize], uint64(slotAddr))
			src = append(src, pt)
			o.pathSlots[n] = base + int64(z)
			n++
		}
		o.stats.BucketWrites++
	}
	o.ct.RemoveMasked(consumed, (o.geom.Levels+1)*o.cfg.Z)
	o.sealSrc = src[:0]
	if err := blockcipher.SealBatch(o.cfg.Sealer, src, o.pathSealed[:n], o.workers); err != nil {
		return err
	}
	return device.WriteSlots(o.dev, o.pathSlots[:n], o.pathSealed[:n])
}

// Access performs one Path ORAM operation. For OpRead, data is ignored
// and the block's current contents (zeros if never written) are
// returned. For OpWrite, data is stored and the previous contents are
// returned. Either way the same path-read, remap, path-write sequence
// executes, so reads and writes are indistinguishable on the bus.
func (o *ORAM) Access(op Op, addr int64, data []byte) ([]byte, error) {
	if err := o.checkAddr(addr); err != nil {
		return nil, err
	}
	if op == OpWrite && len(data) != o.cfg.BlockSize {
		return nil, fmt.Errorf("pathoram: write payload %d bytes, want %d", len(data), o.cfg.BlockSize)
	}

	leaf, err := o.pm.Get(addr)
	if err != nil {
		return nil, err
	}
	fresh := leaf == posmap.NoLeaf
	if fresh {
		// Unmapped block: still read a uniformly random path so the
		// bus pattern never reveals first-touch.
		leaf = o.cfg.RNG.Int63n(o.geom.Leaves())
	}
	if err := o.readPath(leaf); err != nil {
		return nil, err
	}

	current, inStash := o.stash.Take(addr)
	if !inStash {
		current = make([]byte, o.cfg.BlockSize)
		if !fresh {
			// Mapped but absent: corruption (or stash overflow loss).
			return nil, fmt.Errorf("pathoram: block %d mapped to leaf %d but not found on path", addr, leaf)
		}
	}
	if fresh && op == OpWrite {
		o.real++
	}

	// Remap to a fresh uniform leaf before write-back.
	if _, err := o.pm.Remap(addr); err != nil {
		return nil, err
	}

	var stored []byte
	if op == OpWrite {
		stored = o.newPayload(data)
	} else if fresh {
		// A read of a never-written block does not allocate state.
		if err := o.pm.Set(addr, posmap.NoLeaf); err != nil {
			return nil, err
		}
		if err := o.writePath(leaf); err != nil {
			return nil, err
		}
		o.stats.Accesses++
		return current, nil
	} else {
		// The stash copy must be distinct from the buffer handed to the
		// caller: stash payloads are recycled once sealed back into the
		// tree, caller buffers never are.
		stored = o.newPayload(current)
	}
	if err := o.stash.Put(addr, stored); err != nil {
		return nil, err
	}
	if err := o.writePath(leaf); err != nil {
		return nil, err
	}
	o.stats.Accesses++
	return current, nil
}

// Read fetches the block at addr.
func (o *ORAM) Read(addr int64) ([]byte, error) { return o.Access(OpRead, addr, nil) }

// Write stores data at addr.
func (o *ORAM) Write(addr int64, data []byte) error {
	_, err := o.Access(OpWrite, addr, data)
	return err
}

// DummyAccess reads and rewrites one uniformly random path without
// touching any logical block — the padding operation H-ORAM's
// scheduler issues when a group cannot be filled with real requests.
func (o *ORAM) DummyAccess() error {
	leaf := o.cfg.RNG.Int63n(o.geom.Leaves())
	if err := o.readPath(leaf); err != nil {
		return err
	}
	if err := o.writePath(leaf); err != nil {
		return err
	}
	o.stats.DummyAccess++
	return nil
}

// Insert places a block directly into the stash with a fresh random
// leaf, without a path access. H-ORAM uses this when the storage-layer
// I/O delivers a missed block into the memory tree's stash (§4.1); the
// block migrates into the tree on subsequent write-backs.
//
// The address must not already be resident in the tree (H-ORAM's
// permutation list guarantees a block is fetched from storage at most
// once per period): inserting over a tree-resident block would leave a
// stale copy behind, so it is rejected. Re-inserting while the block
// is still in the stash simply replaces the stash copy.
func (o *ORAM) Insert(addr int64, data []byte) error {
	if err := o.checkAddr(addr); err != nil {
		return err
	}
	if len(data) != o.cfg.BlockSize {
		return fmt.Errorf("pathoram: insert payload %d bytes, want %d", len(data), o.cfg.BlockSize)
	}
	existing, err := o.pm.Get(addr)
	if err != nil {
		return err
	}
	if existing != posmap.NoLeaf && !o.stash.Has(addr) {
		return fmt.Errorf("pathoram: Insert(%d): block already resident in the tree; use Write", addr)
	}
	if existing == posmap.NoLeaf {
		o.real++
	}
	if _, err := o.pm.Remap(addr); err != nil {
		return err
	}
	if err := o.stash.Put(addr, o.newPayload(data)); err != nil {
		return err
	}
	o.stats.Inserts++
	return nil
}

// Has reports whether addr currently holds a real block.
func (o *ORAM) Has(addr int64) (bool, error) {
	if err := o.checkAddr(addr); err != nil {
		return false, err
	}
	if o.stash.Has(addr) {
		return true, nil
	}
	leaf, err := o.pm.Get(addr)
	if err != nil {
		return false, err
	}
	return leaf != posmap.NoLeaf, nil
}

// DrainAll reads the entire tree (sequentially — this is the bulk scan
// H-ORAM's evict phase performs), combines it with the stash, and
// returns every real block in ascending address order. The tree is
// re-filled with dummies and the position map cleared: the ORAM is
// empty afterwards.
func (o *ORAM) DrainAll() ([]stash.Block, error) {
	chunk := int64(len(o.pathSealed))
	for lo := int64(0); lo < o.geom.Slots(); lo += chunk {
		hi := lo + chunk
		if hi > o.geom.Slots() {
			hi = o.geom.Slots()
		}
		n := int(hi - lo)
		for i := 0; i < n; i++ {
			o.pathSlots[i] = lo + int64(i)
		}
		if err := device.ReadSlots(o.dev, o.pathSlots[:n], o.pathSealed[:n]); err != nil {
			return nil, err
		}
		if err := blockcipher.OpenBatch(o.cfg.Sealer, o.pathSealed[:n], o.pathPt[:n], o.workers); err != nil {
			return nil, fmt.Errorf("pathoram: drain slots [%d,%d): %w", lo, hi, err)
		}
		for i := 0; i < n; i++ {
			pt := o.pathPt[i]
			addr := int64(binary.BigEndian.Uint64(pt[:headerSize]))
			if addr == dummyAddr {
				continue
			}
			if err := o.stash.Put(addr, o.newPayload(pt[headerSize:])); err != nil {
				return nil, err
			}
		}
	}
	blocks := o.stash.Drain()
	o.pm.Clear()
	o.real = 0
	if err := o.clearTree(); err != nil {
		return nil, err
	}
	return blocks, nil
}
