package pathoram

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/simclock"
)

func testConfig(blocks int64, blockSize int) Config {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	rng := blockcipher.NewRNGFromString("pathoram-test")
	sealer, err := blockcipher.NewAESSealer(key, rng.Fork("sealer"))
	if err != nil {
		panic(err)
	}
	return Config{
		Blocks:    blocks,
		BlockSize: blockSize,
		Z:         4,
		Sealer:    sealer,
		RNG:       rng.Fork("oram"),
	}
}

func newTestORAM(t *testing.T, blocks int64, blockSize int) (*ORAM, *device.Sim) {
	t.Helper()
	cfg := testConfig(blocks, blockSize)
	return newORAMWithConfig(t, cfg)
}

func newORAMWithConfig(t *testing.T, cfg Config) (*ORAM, *device.Sim) {
	t.Helper()
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = 2 * cfg.Blocks
	}
	clk := simclock.New()
	// Generously sized device; New checks the exact requirement.
	dev, err := device.New(device.DRAM(), cfg.SlotSize(), 8*capacity, clk)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	return o, dev
}

func payload(size int, fill byte) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(8, 64)
	clk := simclock.New()
	dev, _ := device.New(device.DRAM(), base.SlotSize(), 1024, clk)

	bad := base
	bad.Blocks = 0
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted zero blocks")
	}
	bad = base
	bad.BlockSize = 0
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted zero block size")
	}
	bad = base
	bad.Z = 0
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted zero Z")
	}
	bad = base
	bad.Sealer = nil
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted nil sealer")
	}
	bad = base
	bad.RNG = nil
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted nil RNG")
	}
	if _, err := New(base, nil); err == nil {
		t.Error("accepted nil device")
	}
	// Wrong slot size.
	wrongDev, _ := device.New(device.DRAM(), base.SlotSize()+1, 1024, clk)
	if _, err := New(base, wrongDev); err == nil {
		t.Error("accepted device with wrong slot size")
	}
	// Too small.
	tinyDev, _ := device.New(device.DRAM(), base.SlotSize(), 2, clk)
	if _, err := New(base, tinyDev); err == nil {
		t.Error("accepted undersized device")
	}
}

func TestReadNeverWrittenReturnsZeros(t *testing.T) {
	o, _ := newTestORAM(t, 16, 32)
	got, err := o.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatalf("Read(unwritten) = %x, want zeros", got)
	}
	if o.RealCount() != 0 {
		t.Fatalf("RealCount() = %d after read of unwritten block", o.RealCount())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	o, _ := newTestORAM(t, 16, 32)
	want := payload(32, 0xAB)
	if err := o.Write(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Read(3) = %x, want %x", got, want)
	}
	if o.RealCount() != 1 {
		t.Fatalf("RealCount() = %d, want 1", o.RealCount())
	}
}

func TestWriteReturnsPrevious(t *testing.T) {
	o, _ := newTestORAM(t, 16, 16)
	first := payload(16, 1)
	second := payload(16, 2)
	o.Write(7, first)
	prev, err := o.Access(OpWrite, 7, second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prev, first) {
		t.Fatalf("overwrite returned %x, want %x", prev, first)
	}
	got, _ := o.Read(7)
	if !bytes.Equal(got, second) {
		t.Fatalf("Read after overwrite = %x, want %x", got, second)
	}
	if o.RealCount() != 1 {
		t.Fatalf("RealCount() = %d, want 1", o.RealCount())
	}
}

func TestManyBlocksSurviveChurn(t *testing.T) {
	const blocks = 64
	const blockSize = 24
	o, _ := newTestORAM(t, blocks, blockSize)
	for a := int64(0); a < blocks; a++ {
		if err := o.Write(a, payload(blockSize, byte(a))); err != nil {
			t.Fatalf("Write(%d): %v", a, err)
		}
	}
	// Churn with interleaved reads and rewrites.
	rng := blockcipher.NewRNGFromString("churn")
	version := make(map[int64]byte)
	for i := 0; i < 500; i++ {
		a := rng.Int63n(blocks)
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			if err := o.Write(a, payload(blockSize, v)); err != nil {
				t.Fatal(err)
			}
			version[a] = v
		} else {
			got, err := o.Read(a)
			if err != nil {
				t.Fatal(err)
			}
			want := byte(a)
			if v, ok := version[a]; ok {
				want = v
			}
			if !bytes.Equal(got, payload(blockSize, want)) {
				t.Fatalf("iteration %d: Read(%d) = %x, want fill %d", i, a, got[:4], want)
			}
		}
	}
	if o.RealCount() != blocks {
		t.Fatalf("RealCount() = %d, want %d", o.RealCount(), blocks)
	}
}

func TestAddrBounds(t *testing.T) {
	o, _ := newTestORAM(t, 8, 16)
	if _, err := o.Read(-1); err == nil {
		t.Error("Read(-1) passed")
	}
	if _, err := o.Read(8); err == nil {
		t.Error("Read(8) passed")
	}
	if err := o.Write(9, payload(16, 0)); err == nil {
		t.Error("Write(9) passed")
	}
	if err := o.Insert(-3, payload(16, 0)); err == nil {
		t.Error("Insert(-3) passed")
	}
	if _, err := o.Has(100); err == nil {
		t.Error("Has(100) passed")
	}
}

func TestWriteWrongSizeRejected(t *testing.T) {
	o, _ := newTestORAM(t, 8, 16)
	if err := o.Write(0, payload(15, 0)); err == nil {
		t.Error("short write accepted")
	}
	if err := o.Insert(0, payload(17, 0)); err == nil {
		t.Error("long insert accepted")
	}
}

func TestInsertThenRead(t *testing.T) {
	o, _ := newTestORAM(t, 16, 16)
	want := payload(16, 0x5C)
	if err := o.Insert(4, want); err != nil {
		t.Fatal(err)
	}
	if o.StashLen() != 1 {
		t.Fatalf("StashLen() = %d after Insert, want 1", o.StashLen())
	}
	has, err := o.Has(4)
	if err != nil || !has {
		t.Fatalf("Has(4) = %v, %v", has, err)
	}
	got, err := o.Read(4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Read after Insert = %x, want %x", got, want)
	}
	if o.Stats().Inserts != 1 {
		t.Fatalf("Stats().Inserts = %d", o.Stats().Inserts)
	}
}

func TestInsertDoesNotTouchDevice(t *testing.T) {
	o, dev := newTestORAM(t, 16, 16)
	before := dev.Stats().Ops()
	if err := o.Insert(2, payload(16, 1)); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().Ops(); got != before {
		t.Fatalf("Insert performed %d device ops", got-before)
	}
}

func TestHas(t *testing.T) {
	o, _ := newTestORAM(t, 8, 16)
	has, _ := o.Has(3)
	if has {
		t.Fatal("Has(3) on empty ORAM")
	}
	o.Write(3, payload(16, 9))
	has, _ = o.Has(3)
	if !has {
		t.Fatal("Has(3) = false after Write")
	}
}

func TestDummyAccess(t *testing.T) {
	o, _ := newTestORAM(t, 16, 16)
	o.Write(0, payload(16, 7))
	for i := 0; i < 20; i++ {
		if err := o.DummyAccess(); err != nil {
			t.Fatal(err)
		}
	}
	if o.Stats().DummyAccess != 20 {
		t.Fatalf("DummyAccess count = %d", o.Stats().DummyAccess)
	}
	got, err := o.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(16, 7)) {
		t.Fatal("dummy accesses corrupted a real block")
	}
}

func TestDrainAll(t *testing.T) {
	const blocks = 32
	o, _ := newTestORAM(t, blocks+1, 16)
	for a := int64(0); a < blocks; a++ {
		o.Write(a, payload(16, byte(a+1)))
	}
	// Leave one fresh block in the stash via Insert to confirm the
	// stash drains along with the tree.
	if err := o.Insert(blocks, payload(16, 0xEE)); err != nil {
		t.Fatal(err)
	}

	drained, err := o.DrainAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(drained) != blocks+1 {
		t.Fatalf("DrainAll returned %d blocks, want %d", len(drained), blocks+1)
	}
	for i, b := range drained {
		if b.Addr != int64(i) {
			t.Fatalf("drained[%d].Addr = %d, want ascending order", i, b.Addr)
		}
		wantFill := byte(i + 1)
		if i == blocks {
			wantFill = 0xEE
		}
		if !bytes.Equal(b.Data, payload(16, wantFill)) {
			t.Fatalf("drained[%d] data fill = %x, want %x", i, b.Data[0], wantFill)
		}
	}
	if o.RealCount() != 0 || o.StashLen() != 0 {
		t.Fatalf("ORAM not empty after drain: real=%d stash=%d", o.RealCount(), o.StashLen())
	}
	// All reads now return zeros.
	got, _ := o.Read(5)
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatal("block survived DrainAll")
	}
}

func TestAccessTouchesExactlyOnePath(t *testing.T) {
	o, dev := newTestORAM(t, 16, 16)
	o.Write(0, payload(16, 1))

	var slots []int64
	dev.SetHook(func(_ string, op device.Op, slot int64) {
		if op == device.OpRead {
			slots = append(slots, slot)
		}
	})
	if _, err := o.Read(0); err != nil {
		t.Fatal(err)
	}
	dev.SetHook(nil)

	wantReads := (o.Geometry().Levels + 1) * 4 // Z = 4
	if len(slots) != wantReads {
		t.Fatalf("access read %d slots, want %d (one path)", len(slots), wantReads)
	}
	// The slots must form a root-to-leaf path: derive bucket set.
	buckets := map[int64]bool{}
	for _, s := range slots {
		buckets[s/4] = true
	}
	if len(buckets) != o.Geometry().Levels+1 {
		t.Fatalf("access touched %d buckets, want %d", len(buckets), o.Geometry().Levels+1)
	}
	if !buckets[0] {
		t.Fatal("path did not include the root bucket")
	}
}

func TestRepeatedAccessUsesFreshPaths(t *testing.T) {
	// Remap-on-access: reading the same block repeatedly must not pin
	// one leaf. With 32 leaves and 64 reads, seeing ≤ 3 distinct leaf
	// buckets would be astronomically unlikely.
	o, dev := newTestORAM(t, 64, 16)
	o.Write(0, payload(16, 1))

	leafBuckets := map[int64]bool{}
	geom := o.Geometry()
	dev.SetHook(func(_ string, op device.Op, slot int64) {
		bucket := slot / 4
		if op == device.OpRead && geom.LevelOf(bucket) == geom.Levels {
			leafBuckets[bucket] = true
		}
	})
	for i := 0; i < 64; i++ {
		if _, err := o.Read(0); err != nil {
			t.Fatal(err)
		}
	}
	dev.SetHook(nil)
	if len(leafBuckets) <= 3 {
		t.Fatalf("64 reads touched only %d distinct leaf buckets; remap-on-access broken", len(leafBuckets))
	}
}

func TestStashStaysBounded(t *testing.T) {
	// With Z=4 and 50% utilisation the stash peak should stay modest.
	const blocks = 128
	o, _ := newTestORAM(t, blocks, 8)
	for a := int64(0); a < blocks; a++ {
		o.Write(a, payload(8, byte(a)))
	}
	rng := blockcipher.NewRNGFromString("stash-bound")
	for i := 0; i < 2000; i++ {
		if _, err := o.Read(rng.Int63n(blocks)); err != nil {
			t.Fatal(err)
		}
	}
	if peak := o.StashPeak(); peak > 40 {
		t.Fatalf("stash peak %d is suspiciously high for Z=4 at 50%% load", peak)
	}
}

func TestCustomCapacityGeometry(t *testing.T) {
	cfg := testConfig(1024, 16)
	cfg.Capacity = 64 // small tree regardless of address space
	o, _ := newORAMWithConfig(t, cfg)
	if o.Geometry().Slots() < 64 {
		t.Fatalf("geometry slots = %d, want ≥ 64", o.Geometry().Slots())
	}
	if o.Capacity() != o.Geometry().Slots()/2 {
		t.Fatalf("Capacity() = %d", o.Capacity())
	}
	// The full address space is still addressable.
	if err := o.Write(1000, payload(16, 3)); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(16, 3)) {
		t.Fatal("round trip through small tree failed")
	}
}

func TestStatsCounters(t *testing.T) {
	o, _ := newTestORAM(t, 16, 16)
	o.Write(0, payload(16, 1))
	o.Read(0)
	st := o.Stats()
	if st.Accesses != 2 {
		t.Fatalf("Accesses = %d, want 2", st.Accesses)
	}
	pathLen := int64(o.Geometry().Levels + 1)
	if st.BucketReads != 2*pathLen {
		t.Fatalf("BucketReads = %d, want %d", st.BucketReads, 2*pathLen)
	}
	if st.BucketWrites != 2*pathLen {
		t.Fatalf("BucketWrites = %d, want %d", st.BucketWrites, 2*pathLen)
	}
}

func TestTamperedDeviceDetected(t *testing.T) {
	o, dev := newTestORAM(t, 8, 16)
	o.Write(0, payload(16, 1))
	// Corrupt every slot of the root bucket; the next access must
	// fail authentication rather than return wrong data.
	junk := make([]byte, dev.SlotSize())
	for z := int64(0); z < 4; z++ {
		if err := dev.WriteRaw(z, junk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.Read(0); err == nil {
		t.Fatal("read of tampered tree succeeded")
	}
}

func BenchmarkAccess(b *testing.B) {
	for _, blocks := range []int64{256, 4096} {
		b.Run(fmt.Sprintf("N=%d", blocks), func(b *testing.B) {
			cfg := testConfig(blocks, 1024)
			clk := simclock.New()
			dev, err := device.New(device.DRAM(), cfg.SlotSize(), 8*blocks, clk)
			if err != nil {
				b.Fatal(err)
			}
			o, err := New(cfg, dev)
			if err != nil {
				b.Fatal(err)
			}
			buf := payload(1024, 1)
			for a := int64(0); a < blocks; a++ {
				if err := o.Write(a, buf); err != nil {
					b.Fatal(err)
				}
			}
			rng := blockcipher.NewRNGFromString("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.Read(rng.Int63n(blocks)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestInsertOverTreeResidentRejected(t *testing.T) {
	o, _ := newTestORAM(t, 8, 16)
	if err := o.Write(1, payload(16, 1)); err != nil {
		t.Fatal(err)
	}
	// Block 1 now lives in the tree (not the stash); Insert must refuse
	// rather than create a stale duplicate.
	if err := o.Insert(1, payload(16, 2)); err == nil {
		t.Fatal("Insert over a tree-resident block succeeded")
	}
	// Re-inserting while still in the stash is allowed.
	if err := o.Insert(5, payload(16, 3)); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(5, payload(16, 4)); err != nil {
		t.Fatalf("stash-replace Insert failed: %v", err)
	}
	got, err := o.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(16, 4)) {
		t.Fatal("stash-replace Insert did not take effect")
	}
}
