// Cluster observability: the gateway's view of its nodes. Observe
// registers per-node transport-health instruments on the gateway
// registry; MetricsHandler answers one /metrics scrape with the
// gateway's own exposition PLUS every node's exposition (fetched
// through the METRICS shard-control verb) relabelled with a node="i"
// label, so one scrape sees the whole cluster.
//
// Leak-audit note: per-node failure counts are Public — a transport
// fault is a TCP-level event the network adversary witnesses directly
// (the connection reset or timed out on the wire), so counting it
// reveals nothing the wire did not. Node expositions are already
// leak-audited by the node's own registry; relabelling adds only the
// placement index, which the adversary knows from the gateway's dial
// pattern.
package cluster

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Observe registers per-node cluster health instruments on reg. The
// engine must be one assembled by Connect (remote backends); in-process
// shards are skipped — they have no transport to fail.
func Observe(reg *obs.Registry, eng *engine.Engine) {
	for i := 0; i < eng.Shards(); i++ {
		r, ok := eng.Backend(i).(*remoteShard)
		if !ok {
			continue
		}
		node := r // capture per iteration
		reg.GaugeFunc("horam_cluster_node_failures",
			"transport/protocol errors surfaced by this node",
			obs.Public("transport faults are TCP-level events the network adversary observes directly; counting them reveals nothing beyond the wire"),
			func() int64 { return node.failures.Load() },
			obs.Label{Key: "node", Value: strconv.Itoa(i)})
	}
	reg.Gauge("horam_cluster_nodes",
		"shard nodes in the gateway placement",
		obs.Public("placement size equals the shard count, which is public geometry (announced in every PEEK echo)")).
		Set(int64(eng.Shards()))
}

// MetricsHandler returns the gateway /metrics handler: the gateway
// registry's exposition followed by each node's exposition scraped
// over the METRICS verb, comment lines stripped and every sample
// relabelled with node="i". A node that cannot answer contributes a
// comment naming it and bumps the scrape-error counter instead of
// failing the whole scrape.
func MetricsHandler(reg *obs.Registry, eng *engine.Engine) http.Handler {
	scrapeErrs := reg.Counter("horam_cluster_scrape_errors_total",
		"node METRICS fetches that failed during a gateway scrape",
		obs.Public("scrape failures are transport faults; see horam_cluster_node_failures"))
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			return
		}
		for i := 0; i < eng.Shards(); i++ {
			r, ok := eng.Backend(i).(*remoteShard)
			if !ok {
				continue
			}
			text, err := r.c.Metrics()
			if err != nil {
				scrapeErrs.Inc()
				fmt.Fprintf(w, "# node %d (%s) scrape failed\n", i, r.addr) //horam:errok best-effort scrape annotation on an http response
				continue
			}
			fmt.Fprint(w, injectNodeLabel(text, i)) //horam:errok http response write; the client sees a truncated scrape
		}
	})
}

// injectNodeLabel relabels one Prometheus text exposition with
// node="<node>" on every sample line, dropping comment lines (HELP/
// TYPE headers would collide with the gateway's own when metric names
// overlap across nodes). Label values in this repository's registry
// never contain spaces or braces, so the first '{' or ' ' on a line
// reliably ends the metric name.
func injectNodeLabel(text string, node int) string {
	label := `node="` + strconv.Itoa(node) + `"`
	var b strings.Builder
	b.Grow(len(text) + 256)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			if line[i] == '{' {
				b.WriteString(line[:i+1])
				b.WriteString(label)
				b.WriteString(",")
				b.WriteString(line[i+1:])
			} else {
				b.WriteString(line[:i])
				b.WriteString("{")
				b.WriteString(label)
				b.WriteString("}")
				b.WriteString(line[i:])
			}
		} else {
			// No value separator: not a sample line; pass through
			// untouched rather than corrupt it.
			b.WriteString(line)
		}
		b.WriteString("\n")
	}
	return b.String()
}
