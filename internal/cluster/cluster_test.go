// The distributed half of the volume-leveling invariant: a gateway
// engine over real TCP shard nodes must behave exactly like the
// single-process sharded engine — identical results (differential
// against a plain map) and, the hard part, GLOBALLY leveled per-shard
// cycle counts: after any batch, every node in a quiescent cluster
// has run the same number of scheduler cycles, however adversarially
// skewed the workload, because Engine.level reads and pads counts
// over the wire (CYCLES/PAD).
package cluster

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/server"
)

// testDial keeps probe retries tight for loopback tests.
var testDial = client.DialConfig{
	Timeout:  2 * time.Second,
	Attempts: 5,
	Backoff:  20 * time.Millisecond,
}

// gatewayOpts is the GLOBAL geometry the gateway and every node
// derive their configuration from — small enough that a few hundred
// requests push every shard through multiple shuffle periods.
func gatewayOpts(shards int) engine.Options {
	return engine.Options{
		Blocks:      1024,
		BlockSize:   64,
		MemoryBytes: 16 << 10,
		Insecure:    true,
		Seed:        fmt.Sprintf("cluster-%d", shards),
		Shards:      shards,
		Stages:      []config.Stage{{C: 3, Frac: 1}},
	}
}

// startNode runs one horamd-equivalent shard node in-process: a
// 1-shard engine built from engine.ShardConfig, served with
// shard-control enabled on a loopback listener.
func startNode(t *testing.T, opts engine.Options, index int) string {
	t.Helper()
	shardOpts, err := engine.ShardConfig(opts, index)
	if err != nil {
		t.Fatal(err)
	}
	return serveEngine(t, shardOpts)
}

func serveEngine(t *testing.T, shardOpts engine.Options) string {
	t.Helper()
	e, err := engine.New(shardOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Engine:       e,
		ShardControl: true,
		BatchWindow:  200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("node Serve returned %v", err)
		}
		e.Close()
	})
	return ln.Addr().String()
}

// startCluster brings up one node per shard and connects the gateway
// engine over them.
func startCluster(t *testing.T, opts engine.Options) *engine.Engine {
	t.Helper()
	p := Placement{}
	for i := 0; i < opts.Shards; i++ {
		p.Nodes = append(p.Nodes, startNode(t, opts, i))
	}
	e, err := Connect(opts, p, testDial)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// nodeCycles reads every node's cumulative cycle count over the wire.
func nodeCycles(t *testing.T, e *engine.Engine) []int64 {
	t.Helper()
	counts := make([]int64, e.Shards())
	for i := range counts {
		n, err := e.Backend(i).Cycles()
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = n
	}
	return counts
}

// TestClusterGlobalLeveling is the acceptance core: hot-single-address
// vs uniform-scan against 2- and 4-node clusters, differential
// against a map, with per-node cycle counts asserted EQUAL after
// every batch and the workloads pushed through at least two shuffle
// periods per shard.
func TestClusterGlobalLeveling(t *testing.T) {
	const requests = 600
	const batchSize = 50
	workloads := []struct {
		name string
		addr func(i int) int64
	}{
		{"hot-single-address", func(i int) int64 { return 7 }},
		{"uniform-scan", func(i int) int64 { return int64(i*31) % 1024 }},
	}
	for _, shards := range []int{2, 4} {
		for _, wl := range workloads {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, wl.name), func(t *testing.T) {
				opts := gatewayOpts(shards)
				e := startCluster(t, opts)

				// Differential model: plain map, zero block for
				// never-written addresses.
				model := make(map[int64][]byte)
				expect := func(addr int64) []byte {
					if v, ok := model[addr]; ok {
						return v
					}
					return make([]byte, opts.BlockSize)
				}
				payload := func(addr int64, i int) []byte {
					b := make([]byte, opts.BlockSize)
					copy(b, fmt.Sprintf("a%d-i%d", addr, i))
					return b
				}

				type check struct {
					req  *engine.Request
					want []byte
				}
				for off := 0; off < requests; off += batchSize {
					var reqs []*engine.Request
					var checks []check
					for i := off; i < off+batchSize; i++ {
						addr := wl.addr(i)
						if i%3 == 0 {
							data := payload(addr, i)
							reqs = append(reqs, &engine.Request{Op: engine.OpWrite, Addr: addr, Data: data})
							model[addr] = data
						} else {
							r := &engine.Request{Op: engine.OpRead, Addr: addr}
							reqs = append(reqs, r)
							// Expected value is the model at THIS point in
							// the serial order (same-shard order is
							// preserved within a batch).
							checks = append(checks, check{r, append([]byte(nil), expect(addr)...)})
						}
					}
					if err := e.Batch(reqs); err != nil {
						t.Fatal(err)
					}
					for _, c := range checks {
						if !bytes.Equal(c.req.Result, c.want) {
							t.Fatalf("addr %d read %q, model says %q", c.req.Addr, c.req.Result, c.want)
						}
					}
					// The invariant under test: after ANY batch, the
					// quiescent cluster shows equal per-node cycle counts
					// — read over the wire, not from local state.
					counts := nodeCycles(t, e)
					for i, n := range counts {
						if n != counts[0] {
							t.Fatalf("after batch at offset %d: node %d ran %d cycles, node 0 ran %d — leveling is not global (%v)",
								off, i, n, counts[0], counts)
						}
					}
					if counts[0] == 0 {
						t.Fatalf("after batch at offset %d: no cycles ran", off)
					}
				}

				// Through >= 2 shuffle periods on every shard: the nodes'
				// shuffle counters come back over STATS.
				stats := e.ShardStats()
				var padded int64
				for _, sh := range stats {
					if sh.Shuffles < 2 {
						t.Errorf("shard %d ran %d shuffles; the workload must span >= 2 shuffle periods", sh.Shard, sh.Shuffles)
					}
					padded += sh.PadCycles
				}
				// The hot workload funnels every request into one shard;
				// if no padding was recorded the equality above passed
				// vacuously.
				if wl.name == "hot-single-address" && padded == 0 {
					t.Error("no pad cycles recorded; cross-node leveling did not run")
				}
			})
		}
	}
}

// A node launched with drifted global options must be refused at
// Connect, before any traffic is served through it.
func TestConnectRefusesDriftedNode(t *testing.T) {
	opts := gatewayOpts(2)
	good := startNode(t, opts, 0)

	// Node 1 runs with a drifted seed: same geometry, different
	// partition — silently serving through it would scramble data.
	drifted := opts
	drifted.Seed = "cluster-drifted"
	bad := startNode(t, drifted, 1)

	_, err := Connect(opts, Placement{Nodes: []string{good, bad}}, testDial)
	if err == nil || !strings.Contains(err.Error(), "placement mismatch") {
		t.Fatalf("Connect with a drifted node: got %v, want placement-mismatch refusal", err)
	}
}

// A node serving the wrong shard index (placement order swapped) must
// be refused: its manifest echoes its true identity.
func TestConnectRefusesSwappedPlacement(t *testing.T) {
	opts := gatewayOpts(2)
	n0 := startNode(t, opts, 0)
	n1 := startNode(t, opts, 1)
	_, err := Connect(opts, Placement{Nodes: []string{n1, n0}}, testDial)
	if err == nil || !strings.Contains(err.Error(), "placement mismatch") {
		t.Fatalf("Connect with swapped placement: got %v, want placement-mismatch refusal", err)
	}
}

// A plain (non-shard-serve) server must fail the health probe: its
// shard-control verbs are disabled, so it cannot be leveled and must
// not be placed.
func TestConnectRefusesNonShardNode(t *testing.T) {
	opts := gatewayOpts(2)
	shardOpts, err := engine.ShardConfig(opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(shardOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv, err := server.New(server.Config{Engine: e}) // no ShardControl
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	quick := testDial
	quick.Attempts = 2
	_, err = Connect(opts, Placement{Nodes: []string{ln.Addr().String(), ln.Addr().String()}}, quick)
	if err == nil || !strings.Contains(err.Error(), "shard-control disabled") {
		t.Fatalf("Connect to a non-shard node: got %v, want shard-control refusal", err)
	}
}

func TestParsePlacement(t *testing.T) {
	p, err := ParsePlacement("127.0.0.1:7001, 127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 2 || p.Nodes[0] != "127.0.0.1:7001" || p.Nodes[1] != "127.0.0.1:7002" {
		t.Fatalf("ParsePlacement: got %v", p.Nodes)
	}
	for _, bad := range []string{"", " ", "a:1,,b:2", "a:1,a:1"} {
		if _, err := ParsePlacement(bad); err == nil {
			t.Errorf("ParsePlacement(%q) accepted", bad)
		}
	}
}
