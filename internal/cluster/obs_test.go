package cluster

import "testing"

func TestInjectNodeLabel(t *testing.T) {
	in := "# HELP horam_shard_cycles per-shard cycles\n" +
		"# TYPE horam_shard_cycles gauge\n" +
		"horam_shard_cycles{shard=\"0\"} 42\n" +
		"horam_server_windows_total 7\n" +
		"horam_server_window_size_bucket{le=\"1\"} 3\n" +
		"\n"
	want := "horam_shard_cycles{node=\"3\",shard=\"0\"} 42\n" +
		"horam_server_windows_total{node=\"3\"} 7\n" +
		"horam_server_window_size_bucket{node=\"3\",le=\"1\"} 3\n"
	if got := injectNodeLabel(in, 3); got != want {
		t.Fatalf("injectNodeLabel:\n got %q\nwant %q", got, want)
	}
}

func TestInjectNodeLabelPassThrough(t *testing.T) {
	// A line with no separator is not a sample; it must survive
	// unmangled rather than be corrupted by label insertion.
	if got := injectNodeLabel("weird-line-without-space\n", 0); got != "weird-line-without-space\n" {
		t.Fatalf("non-sample line mangled: %q", got)
	}
}
