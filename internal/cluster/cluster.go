// Package cluster is the control plane that assembles one gateway
// engine over many horamd -shard-serve nodes. It owns the placement
// (which node serves which shard index), the startup health probes,
// and the identity validation: before any traffic is served through a
// node, its PEEK manifest echo is checked field-by-field against the
// geometry the gateway derives from its own options
// (engine.ShardConfig), so a node launched with drifted blocks,
// options, seed or shard identity is refused — the distributed
// equivalent of the restore-time option-mismatch refusal every
// durable layer in this repository already performs.
//
// What this package deliberately does NOT do: shard migration (moving
// a shard's snapshot between nodes), failover (re-homing a shard when
// its node dies), or membership changes. The placement is fixed at
// gateway startup; a dead node surfaces as per-task ERRs on the
// requests that touch it, never as silent re-routing.
package cluster

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/config"
	"repro/internal/engine"
)

// Placement maps shard index to node address: Nodes[i] serves shard i
// of a len(Nodes)-shard engine.
type Placement struct {
	Nodes []string
}

// ParsePlacement parses a comma-separated node list ("host:port,
// host:port,..."), index order = shard order. Commas, not colons,
// separate nodes: the addresses themselves contain colons.
func ParsePlacement(s string) (Placement, error) {
	if strings.TrimSpace(s) == "" {
		return Placement{}, errors.New("cluster: empty node list")
	}
	var p Placement
	seen := make(map[string]int)
	for _, f := range strings.Split(s, ",") {
		addr := strings.TrimSpace(f)
		if addr == "" {
			return Placement{}, fmt.Errorf("cluster: empty node address in %q", s)
		}
		if prev, dup := seen[addr]; dup {
			return Placement{}, fmt.Errorf("cluster: node %s listed for both shard %d and shard %d; one process cannot serve two shards of one placement", addr, prev, len(p.Nodes))
		}
		seen[addr] = len(p.Nodes)
		p.Nodes = append(p.Nodes, addr)
	}
	return p, nil
}

// Connect dials every node of the placement, validates each node's
// identity and geometry against the gateway options, and assembles
// the gateway engine over the resulting remote shards. opts describe
// the GLOBAL store exactly as a single-process engine.New call would;
// opts.Shards must equal len(p.Nodes) (0 adopts the placement size)
// and opts.DataDir must be empty — nodes own their durability.
//
// Every node is probed with bounded retry/backoff (dial.Attempts ×
// dial.Backoff, defaulting to client's dial defaults), so a gateway
// racing its nodes' startup converges instead of failing the first
// probe. Any validation failure closes every connection already made
// and reports which node was refused and why.
func Connect(opts engine.Options, p Placement, dial client.DialConfig) (*engine.Engine, error) {
	if len(p.Nodes) == 0 {
		return nil, errors.New("cluster: empty placement")
	}
	if opts.Shards == 0 {
		opts.Shards = len(p.Nodes)
	}
	if opts.Shards != len(p.Nodes) {
		return nil, fmt.Errorf("cluster: options declare %d shards but the placement has %d nodes", opts.Shards, len(p.Nodes))
	}
	if opts.DataDir != "" {
		return nil, errors.New("cluster: gateway options must not set DataDir; shard nodes own their durable directories")
	}
	backends := make([]engine.ShardBackend, len(p.Nodes))
	unwind := func(upTo int) {
		for i := 0; i < upTo; i++ {
			backends[i].Close() //horam:errok unwinding a failed cluster assembly; the refusal error is the one to surface
		}
	}
	for i, addr := range p.Nodes {
		expected, err := engine.ShardConfig(opts, i)
		if err != nil {
			return nil, err
		}
		c, echo, err := dialProbe(addr, dial)
		if err != nil {
			unwind(i)
			return nil, fmt.Errorf("cluster: node %d (%s): %w", i, addr, err)
		}
		if err := checkEcho(expected, echo); err != nil {
			c.Close() //horam:errok refusing a drifted node; the mismatch error is the one to surface
			unwind(i)
			return nil, fmt.Errorf("cluster: node %d (%s): %w", i, addr, err)
		}
		backends[i] = &remoteShard{index: i, addr: addr, c: c, blocks: expected.Blocks}
	}
	e, err := engine.NewWithBackends(opts, backends)
	if err != nil {
		unwind(len(backends))
		return nil, err
	}
	return e, nil
}

// dialProbe establishes a validated control connection: dial, then
// PEEK. Both halves share one bounded attempt budget — a node that
// accepts TCP but cannot answer PEEK yet (or refuses the dial
// outright) is retried with doubling backoff until the budget is
// spent, and the last error is reported.
func dialProbe(addr string, cfg client.DialConfig) (*client.Client, map[string]string, error) {
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	backoff := cfg.Backoff
	if backoff <= 0 {
		backoff = client.DefaultDialBackoff
	}
	single := cfg
	single.Attempts = 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		c, err := client.DialWithConfig(addr, single)
		if err != nil {
			lastErr = err
			continue
		}
		echo, err := c.Peek()
		if err != nil {
			c.Close() //horam:errok abandoning a failed probe; the probe error is the one to surface
			lastErr = fmt.Errorf("health probe (PEEK): %w", err)
			continue
		}
		return c, echo, nil
	}
	return nil, nil, lastErr
}

// checkEcho validates a node's PEEK echo against the gateway-derived
// expectation, reusing the uniform restore-refusal shape. Every field
// the node's manifest echoes is compared — geometry, option flags,
// cluster identity, seed — except the epoch/checkpoint counters,
// whose CROSS-NODE agreement engine assembly checks separately (a
// node is allowed to have restored, as long as all of them restored
// to the same cut).
func checkEcho(expected engine.Options, echo map[string]string) error {
	return config.CheckEcho("placement mismatch", []config.Field{
		{Name: "blocks", Got: echo["blocks"], Want: fmt.Sprintf("%d", expected.Blocks)},
		{Name: "blocksize", Got: echo["blocksize"], Want: fmt.Sprintf("%d", expected.BlockSize)},
		{Name: "shards", Got: echo["shards"], Want: fmt.Sprintf("%d", expected.Shards)},
		{Name: "cshards", Got: echo["cshards"], Want: fmt.Sprintf("%d", expected.ClusterShards)},
		{Name: "shard", Got: echo["shard"], Want: fmt.Sprintf("%d", expected.ShardIndex)},
		{Name: "memory", Got: echo["memory"], Want: fmt.Sprintf("%d", expected.MemoryBytes)},
		{Name: "shuffleratio", Got: echo["shuffleratio"], Want: fmt.Sprintf("%g", expected.ShuffleRatio)},
		{Name: "monolithic", Got: echo["monolithic"], Want: fmt.Sprintf("%t", expected.MonolithicShuffle)},
		{Name: "constanttime", Got: echo["constanttime"], Want: fmt.Sprintf("%t", expected.ConstantTime)},
		{Name: "insecure", Got: echo["insecure"], Want: fmt.Sprintf("%t", expected.Insecure)},
		{Name: "seed", Got: echo["seed"], Want: hex.EncodeToString([]byte(expected.Seed))},
	})
}
