// The remote ShardBackend: one shard of a gateway engine served by a
// horamd -shard-serve node on the far end of a TCP connection. Data
// traffic rides the ordinary block protocol (MULTI/READ/WRITE);
// control traffic — cycle leveling, aligned checkpoints, identity
// probes — rides the shard-control verbs (CYCLES/PAD/CHECKPT/PEEK)
// the node enables.
package cluster

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
)

// remoteShard implements engine.ShardBackend over a client connection
// to a -shard-serve node. The engine's one-scheduler-goroutine-per-
// shard discipline serialises Batch calls, so the connection never
// sees interleaved MULTI frames from one gateway.
type remoteShard struct {
	index  int
	addr   string
	c      *client.Client
	blocks int64

	// failures counts transport/protocol errors surfaced by this
	// node, stamped in fail(); Observe exposes it per node.
	failures atomic.Int64
}

var _ engine.ShardBackend = (*remoteShard)(nil)

func (r *remoteShard) Blocks() int64 { return r.blocks }

// Batch runs the shard-local requests through the node as MULTI
// frames, chunked at the protocol cap. Read results land in the
// requests' Result fields; a write's Result stays nil (the wire
// protocol does not return previous contents) and the simulated
// submit/done timestamps are not populated — the node's clocks are
// not this process's clocks.
func (r *remoteShard) Batch(reqs []*engine.Request) error {
	for off := 0; off < len(reqs); off += client.MaxBatchOps {
		end := off + client.MaxBatchOps
		if end > len(reqs) {
			end = len(reqs)
		}
		ops := make([]client.Op, end-off)
		for i, req := range reqs[off:end] {
			ops[i] = client.Op{Addr: req.Addr}
			if req.Op == engine.OpWrite {
				ops[i].Write = true
				ops[i].Data = req.Data
			}
		}
		results, err := r.c.Batch(ops)
		if err != nil {
			return r.fail(err)
		}
		for i, res := range results {
			if res.Err != nil {
				return r.fail(res.Err)
			}
			if req := reqs[off+i]; req.Op == engine.OpRead {
				req.Result = res.Data
			}
		}
	}
	return nil
}

func (r *remoteShard) Cycles() (int64, error) {
	n, err := r.c.Cycles()
	if err != nil {
		return 0, r.fail(err)
	}
	return n, nil
}

func (r *remoteShard) PadToCycles(target int64) (int64, error) {
	padded, err := r.c.Pad(target)
	if err != nil {
		return padded, r.fail(err)
	}
	return padded, nil
}

// Stats reconstructs the node's scheme counters from its STATS line.
// The engine's Stats path has no error channel (counters are
// best-effort diagnostics, unlike Cycles which correctness depends
// on), so a node that cannot answer contributes zeros.
func (r *remoteShard) Stats() core.Stats {
	kv, err := r.c.Stats()
	if err != nil {
		return core.Stats{}
	}
	var st core.Stats
	st.Requests, _ = client.StatInt(kv, "requests") //horam:errok best-effort diagnostics; a missing field reads as zero
	st.Hits, _ = client.StatInt(kv, "hits")         //horam:errok best-effort diagnostics
	st.Misses, _ = client.StatInt(kv, "misses")     //horam:errok best-effort diagnostics
	st.Shuffles, _ = client.StatInt(kv, "shuffles") //horam:errok best-effort diagnostics
	st.ShuffleQuanta, _ = client.StatInt(kv, "quanta")
	// The node is a 1-shard engine, so its shard 0 counters are the
	// shard's: cumulative cycles live under s0_cycles, not a top-level
	// key.
	st.Cycles, _ = client.StatInt(kv, "s0_cycles") //horam:errok best-effort diagnostics
	if d, err := time.ParseDuration(kv["max_cycle"]); err == nil {
		st.MaxCycleTime = d
	}
	if d, err := time.ParseDuration(kv["simtime"]); err == nil {
		st.SimulatedTime = d
	}
	return st
}

func (r *remoteShard) SaveSnapshotAt(checkpoint uint64) error {
	if err := r.c.Checkpt(checkpoint); err != nil {
		return r.fail(err)
	}
	return nil
}

// Peek reads the node's epoch and lifetime checkpoint counter — the
// agreement the engine checks across shards at assembly, here checked
// across processes.
func (r *remoteShard) Peek() (epoch, checkpoint uint64, err error) {
	kv, err := r.c.Peek()
	if err != nil {
		return 0, 0, r.fail(err)
	}
	if epoch, err = strconv.ParseUint(kv["epoch"], 10, 64); err != nil {
		return 0, 0, fmt.Errorf("cluster: node %d (%s): bad PEEK epoch %q", r.index, r.addr, kv["epoch"])
	}
	if checkpoint, err = strconv.ParseUint(kv["checkpoint"], 10, 64); err != nil {
		return 0, 0, fmt.Errorf("cluster: node %d (%s): bad PEEK checkpoint %q", r.index, r.addr, kv["checkpoint"])
	}
	return epoch, checkpoint, nil
}

// RestoreCheckpoint is refused: a node restores its own directory at
// startup, and rolling a remote shard to an older cut belongs to the
// migration/failover seam, not this transport.
func (r *remoteShard) RestoreCheckpoint(checkpoint, epoch uint64) error {
	return engine.ErrRemoteRestore
}

func (r *remoteShard) Close() error {
	if err := r.c.Close(); err != nil {
		return r.fail(err)
	}
	return nil
}

// fail stamps an error with the shard's placement identity, so a
// gateway's per-task ERR lines say WHICH node failed.
func (r *remoteShard) fail(err error) error {
	r.failures.Add(1)
	return fmt.Errorf("cluster: shard %d (%s): %w", r.index, r.addr, err)
}
