// Top-level benchmarks: one per table and figure of the paper's
// evaluation, wrapping the harness in internal/bench. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the reproduced headline numbers as custom
// metrics (speedup, I/O ratio, gains) so `go test -bench` output is a
// self-contained record of the reproduction.
package repro

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/bench"
)

// BenchmarkFigure5_1 regenerates the analytic gain curves and reports
// the paper's two anchor points as metrics.
func BenchmarkFigure5_1(b *testing.B) {
	var f bench.Figure51
	for i := 0; i < b.N; i++ {
		f = bench.RunFigure51()
	}
	var at8c4, peak float64
	for i, r := range f.Ratios {
		for j, c := range f.Cs {
			g := f.Gains[i][j]
			if r == 8 && c == 4 {
				at8c4 = g
			}
			if g > peak {
				peak = g
			}
		}
	}
	b.ReportMetric(at8c4, "gain@N/n=8,c=4")
	b.ReportMetric(peak, "peak-gain")
}

// BenchmarkTable5_1 evaluates the one-period overhead model.
func BenchmarkTable5_1(b *testing.B) {
	var h, p analytic.PeriodOverhead
	for i := 0; i < b.N; i++ {
		h, p = analytic.Table51(analytic.PaperTable51())
	}
	b.ReportMetric(h.AvgReadKB, "horam-avg-read-KB")
	b.ReportMetric(p.AvgReadKB, "path-avg-read-KB")
}

// BenchmarkTable5_3 runs the paper's small experiment (64 MB data set,
// 25 000 requests) end to end on the simulated machine.
func BenchmarkTable5_3(b *testing.B) {
	if testing.Short() {
		b.Skip("full table 5-3 run")
	}
	var c bench.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		c, err = bench.RunComparison(bench.Table53Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.Speedup, "speedup-x")
	b.ReportMetric(c.IORatio, "io-reduction-x")
	b.ReportMetric(float64(c.HORAM.IOAccesses), "horam-IOs")
}

// BenchmarkTable5_4 runs the large experiment at 1/8 scale by default
// (the cmd/horam-bench tool runs any scale up to the paper's 1 GB).
func BenchmarkTable5_4(b *testing.B) {
	if testing.Short() {
		b.Skip("table 5-4 run")
	}
	var c bench.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		c, err = bench.RunComparison(bench.Table54Params(0.125))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.Speedup, "speedup-x")
	b.ReportMetric(c.IORatio, "io-reduction-x")
}

// BenchmarkTable5_2 measures the calibrated device models.
func BenchmarkTable5_2(b *testing.B) {
	var seqRead float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable52()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Profile.Name == "hdd" {
				seqRead = r.SeqReadMBps
			}
		}
	}
	b.ReportMetric(seqRead, "hdd-seq-read-MBps")
}

// BenchmarkSeqVsRand measures the §5.2 sequential-vs-random gap.
func BenchmarkSeqVsRand(b *testing.B) {
	var r bench.SeqVsRand
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunSeqVsRand()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Ratio, "random-over-seq-x")
}

// BenchmarkPartialShuffle sweeps the §5.3.1 shuffle ratio.
func BenchmarkPartialShuffle(b *testing.B) {
	if testing.Short() {
		b.Skip("partial shuffle sweep")
	}
	var rows []bench.PartialShuffleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunPartialShuffle([]float64{1, 0.25})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ShuffleTime.Seconds(), "full-shuffle-s")
	b.ReportMetric(rows[1].ShuffleTime.Seconds(), "quarter-shuffle-s")
}

// BenchmarkMultiUser sweeps the §5.3.2 user counts.
func BenchmarkMultiUser(b *testing.B) {
	if testing.Short() {
		b.Skip("multi-user sweep")
	}
	var rows []bench.MultiUserRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunMultiUser([]int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Throughput, "req-per-sim-second")
}

// BenchmarkZSweep runs the bucket-size ablation.
func BenchmarkZSweep(b *testing.B) {
	if testing.Short() {
		b.Skip("Z sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunZSweep([]int{2, 4, 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageSchedule runs the scheduler-schedule ablation.
func BenchmarkStageSchedule(b *testing.B) {
	if testing.Short() {
		b.Skip("stage ablation")
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunStageAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoShuffleCase measures the §5.1 non-shuffle (Figure 5-2)
// upper bound: shuffle off the critical path.
func BenchmarkNoShuffleCase(b *testing.B) {
	if testing.Short() {
		b.Skip("no-shuffle case")
	}
	var r bench.NoShuffleResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunNoShuffleCase()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.GainWith, "gain-with-shuffle-x")
	b.ReportMetric(r.GainBackground, "gain-background-x")
}

// BenchmarkShootout compares all four schemes on one trace.
func BenchmarkShootout(b *testing.B) {
	if testing.Short() {
		b.Skip("shootout")
	}
	var rows []bench.ShootoutRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunShootout()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scheme == "H-ORAM" {
			b.ReportMetric(r.TotalTime.Seconds(), "horam-total-s")
		}
	}
}
