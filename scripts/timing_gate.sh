#!/usr/bin/env bash
# Timing-variance gate: run the statistical distinguishability
# experiment (cmd/horam-bench -exp timing) and fail unless BOTH hold:
#
#   ct_pass     — with ConstantTime on, every adversarial workload pair
#                 stays under the Welch |t| threshold;
#   detect_pass — in default mode the stash canary pair exceeds the
#                 same threshold, proving the harness can actually see
#                 the channel it gates (a blind gate proves nothing).
#
#   ./scripts/timing_gate.sh            run the gate
#   ./scripts/timing_gate.sh -update    also rewrite BENCH_timing.json
#
# Env: TIMING_GATE_SKIP=1 skips entirely — the escape hatch for
# pathologically noisy shared runners where even the generous
# threshold cannot hold.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${TIMING_GATE_SKIP:-0}" = "1" ]; then
    echo "timing gate: skipped (TIMING_GATE_SKIP=1)"
    exit 0
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT
if [ "${1:-}" = "-update" ]; then
    out="BENCH_timing.json"
    trap - EXIT
fi

go run ./cmd/horam-bench -exp timing -out "$out"

fail=0
if ! grep -q '"ct_pass": true' "$out"; then
    echo "timing gate: FAIL — a constant-time pair is statistically distinguishable" >&2
    fail=1
fi
if ! grep -q '"detect_pass": true' "$out"; then
    echo "timing gate: FAIL — the default-mode canary was not detected; the harness has lost its power" >&2
    fail=1
fi
if [ "$fail" = "0" ]; then
    echo "timing gate: PASS (constant-time pairs indistinguishable, canary detectable)"
fi
exit "$fail"
