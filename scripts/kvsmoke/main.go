// Command kvsmoke is the end-to-end KV smoke test CI runs: it starts
// a horamd with -kv and -data-dir, drives KSET/KGET/KDEL over the
// wire from concurrent clients, kills the daemon with SIGTERM,
// restarts it from the same directory, and verifies the table
// survived — live keys read back their values, deleted keys stay
// gone, and the kv_* STATS counters resumed.
//
//	go build -o /tmp/horamd ./cmd/horamd
//	go run ./scripts/kvsmoke -horamd /tmp/horamd
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"repro/internal/client"
)

const (
	blocks     = 4096
	blockSize  = 128
	memBytes   = 1 << 20
	shards     = 2
	kvMaxValue = 256
	keys       = 96
	clients    = 4
)

func main() {
	horamd := flag.String("horamd", "", "path to the horamd binary (required)")
	keep := flag.Bool("keep", false, "keep the data directory for inspection")
	flag.Parse()
	if *horamd == "" {
		log.Fatal("kvsmoke: -horamd is required")
	}
	dir, err := os.MkdirTemp("", "kvsmoke-*")
	if err != nil {
		log.Fatal(err)
	}
	if !*keep {
		defer os.RemoveAll(dir)
	}
	if err := run(*horamd, dir); err != nil {
		log.Fatalf("kvsmoke: FAIL: %v", err)
	}
	fmt.Println("kvsmoke: PASS")
}

func keyOf(i int) []byte { return []byte(fmt.Sprintf("user-%03d", i)) }

func valOf(i int) []byte {
	v := bytes.Repeat([]byte{byte(i)}, 1+(i*7)%kvMaxValue)
	copy(v, fmt.Sprintf("record-%d", i))
	return v
}

func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close() //horam:errok the listener existed only to reserve a free port
	return addr, nil
}

func startDaemon(bin, dir, addr string) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-blocks", fmt.Sprint(blocks),
		"-blocksize", fmt.Sprint(blockSize),
		"-mem", fmt.Sprint(memBytes),
		"-shards", fmt.Sprint(shards),
		"-kv",
		"-kv-max-value", fmt.Sprint(kvMaxValue),
		"-data-dir", dir,
		"-checkpoint", "0", // rely on save-on-shutdown: the SIGTERM path under test
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close() //horam:errok readiness probe; the connection carried no requests
			return cmd, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, fmt.Errorf("horamd never started listening on %s", addr)
}

func stopDaemon(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return fmt.Errorf("horamd did not exit within 30s of SIGTERM")
	}
}

func run(bin, dir string) error {
	addr, err := freePort()
	if err != nil {
		return err
	}

	// Boot 1: populate the table from concurrent clients, delete a
	// deterministic subset, spot-check, then SIGTERM.
	cmd, err := startDaemon(bin, dir, addr)
	if err != nil {
		return err
	}
	if err := populate(addr); err != nil {
		cmd.Process.Kill()
		return err
	}
	if err := stopDaemon(cmd); err != nil {
		return fmt.Errorf("first shutdown: %w", err)
	}

	// Boot 2: restart from the same directory; the whole table state
	// must read back.
	cmd, err = startDaemon(bin, dir, addr)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer stopDaemon(cmd)
	return verify(addr)
}

// populate writes keys 0..keys-1 from concurrent clients and deletes
// every fourth one.
func populate(addr string) error {
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close() //horam:errok smoke-test teardown; the assertions already ran
			for i := w; i < keys; i += clients {
				if err := c.KSet(keyOf(i), valOf(i)); err != nil {
					errs[w] = fmt.Errorf("KSET %d: %w", i, err)
					return
				}
			}
			for i := w; i < keys; i += clients {
				if i%4 != 0 {
					continue
				}
				existed, err := c.KDel(keyOf(i))
				if err != nil || !existed {
					errs[w] = fmt.Errorf("KDEL %d: existed=%v err=%v", i, existed, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// verify reads the whole key space back after the restart.
func verify(addr string) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close() //horam:errok smoke-test teardown; the assertions already ran
	for i := 0; i < keys; i++ {
		v, ok, err := c.KGet(keyOf(i))
		if err != nil {
			return fmt.Errorf("KGET %d after restart: %w", i, err)
		}
		if i%4 == 0 {
			if ok {
				return fmt.Errorf("key %d was deleted before the restart but read back %q", i, v)
			}
			continue
		}
		if !ok || !bytes.Equal(v, valOf(i)) {
			return fmt.Errorf("key %d after restart = (%d bytes, %v), want %d bytes", i, len(v), ok, len(valOf(i)))
		}
	}
	// The counters resumed with the table (live keys = 3/4 of the set)
	// and the restarted daemon keeps serving mutations.
	kv, err := c.Stats()
	if err != nil {
		return err
	}
	st, err := client.ParseStats(kv)
	if err != nil {
		return fmt.Errorf("parsing STATS after restart: %w", err)
	}
	if st.KV == nil || st.KV.Count != keys-keys/4 {
		return fmt.Errorf("kv group after restart = %+v, want %d live keys", st.KV, keys-keys/4)
	}
	if err := c.KSet([]byte("post-restart"), []byte("works")); err != nil {
		return fmt.Errorf("KSET after restart: %w", err)
	}
	if v, ok, err := c.KGet([]byte("post-restart")); err != nil || !ok || string(v) != "works" {
		return fmt.Errorf("KGET after restart = (%q, %v, %v)", v, ok, err)
	}
	return nil
}
