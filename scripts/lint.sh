#!/usr/bin/env bash
# Static-analysis gate, mirrored between `make lint` and the CI lint
# job. The repo's own obliviousness linter (cmd/horam-lint) always
# runs: it builds from this module and needs nothing installed. The
# ecosystem checkers — staticcheck and govulncheck — run when present
# on PATH; a missing tool is a visible skip locally, and a failure
# when LINT_REQUIRE_TOOLS=1 (CI installs both and sets it).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== horam-lint =="
go run ./cmd/horam-lint ./...

run_tool() {
	tool=$1
	shift
	if command -v "$tool" >/dev/null 2>&1; then
		echo "== $tool =="
		"$tool" "$@"
	elif [ "${LINT_REQUIRE_TOOLS:-0}" = "1" ]; then
		echo "lint: $tool is required (LINT_REQUIRE_TOOLS=1) but not installed" >&2
		exit 1
	else
		echo "lint: $tool not installed; skipping (set LINT_REQUIRE_TOOLS=1 to make this fatal)"
	fi
}

run_tool staticcheck ./...
run_tool govulncheck ./...

echo "lint: clean"
