#!/usr/bin/env bash
# Persistence smoke: build horamd, start it with -data-dir, write a
# data set over the wire, SIGTERM it between batches, restart from the
# same directory, and verify every block reads back. CI runs this as
# the durability acceptance gate; `make persist-smoke` runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/horamd" ./cmd/horamd
go run ./scripts/persistsmoke -horamd "$tmp/horamd"
