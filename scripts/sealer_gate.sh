#!/usr/bin/env bash
# Sealer throughput gate: run the blockcipher seal/open microbenchmarks
# and fail if any falls below SEALER_GATE_MIN_RATIO (default 0.80) of
# the committed BENCH_sealer.json baseline. CI runs this as the crypto
# hot-path regression gate; `make bench-sealer` runs it locally.
#
#   ./scripts/sealer_gate.sh            gate against the baseline
#   ./scripts/sealer_gate.sh -update    rewrite the baseline
#
# Env: SEALER_GATE_SKIP=1 skips entirely (incomparable hardware),
# SEALER_GATE_MIN_RATIO, SEALER_GATE_BENCHTIME, SEALER_GATE_COUNT.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${SEALER_GATE_SKIP:-0}" = "1" ]; then
    echo "sealer gate: skipped (SEALER_GATE_SKIP=1)"
    exit 0
fi

benchtime="${SEALER_GATE_BENCHTIME:-300ms}"
count="${SEALER_GATE_COUNT:-3}"

out=$(go test -run='^$' -bench 'BenchmarkSealer$|BenchmarkSealBatch$' \
    -benchtime "$benchtime" -count "$count" ./internal/blockcipher)
echo "$out"
echo "$out" | go run ./scripts/sealergate \
    -min-ratio "${SEALER_GATE_MIN_RATIO:-0.80}" "$@"
