#!/usr/bin/env bash
# Cluster smoke: build horamd, start two -shard-serve nodes and one
# -gateway over them, drive KV traffic through the gateway, SIGTERM
# one shard node mid-traffic, and assert the gateway surfaces
# per-task ERRs naming the dead shard instead of wedging. CI runs
# this as the cluster acceptance gate; `make cluster-smoke` runs it
# locally.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/horamd" ./cmd/horamd
go run ./scripts/clustersmoke -horamd "$tmp/horamd"
