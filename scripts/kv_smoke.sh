#!/usr/bin/env bash
# KV smoke: build horamd, start it with -kv -data-dir, drive
# KSET/KGET/KDEL over the wire, SIGTERM it, restart from the same
# directory, and verify the table survived (live keys read back,
# deleted keys stay gone, counters resumed). CI runs this as the KV
# acceptance gate; `make kv-smoke` runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/horamd" ./cmd/horamd
go run ./scripts/kvsmoke -horamd "$tmp/horamd"
