// Command clustersmoke is the end-to-end cluster smoke test CI runs:
// it starts two horamd -shard-serve nodes and one -gateway over them,
// drives KV traffic through the gateway, SIGTERMs one shard node
// mid-traffic, and asserts the gateway surfaces per-task ERR lines
// naming the dead shard instead of wedging — then that the surviving
// processes still answer and shut down cleanly.
//
//	go build -o /tmp/horamd ./cmd/horamd
//	go run ./scripts/clustersmoke -horamd /tmp/horamd
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/client"
)

const (
	blocks    = 4096
	blockSize = 64
	memBytes  = 1 << 20
	shards    = 2
	keys      = 40
)

func main() {
	horamd := flag.String("horamd", "", "path to the horamd binary (required)")
	flag.Parse()
	if *horamd == "" {
		log.Fatal("clustersmoke: -horamd is required")
	}
	if err := run(*horamd); err != nil {
		log.Fatalf("clustersmoke: FAIL: %v", err)
	}
	fmt.Println("clustersmoke: PASS")
}

// freePort asks the kernel for a free loopback port.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close() //horam:errok the listener existed only to reserve a free port
	return addr, nil
}

// globalFlags is the geometry every process of the cluster — nodes
// and gateway alike — must agree on.
func globalFlags(addr string) []string {
	return []string{
		"-addr", addr,
		"-blocks", fmt.Sprint(blocks),
		"-blocksize", fmt.Sprint(blockSize),
		"-mem", fmt.Sprint(memBytes),
		"-shards", fmt.Sprint(shards),
		"-stats-every", "0",
	}
}

// startDaemon launches one horamd and waits until it accepts
// connections.
func startDaemon(bin string, args ...string) (*exec.Cmd, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var addr string
	for i, a := range args {
		if a == "-addr" {
			addr = args[i+1]
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close() //horam:errok readiness probe; the connection carried no requests
			return cmd, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, fmt.Errorf("horamd never started listening on %s", addr)
}

func stopDaemon(name string, cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("%s: SIGTERM: %w", name, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("%s: exit: %w", name, err)
		}
		return nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return fmt.Errorf("%s did not exit within 30s of SIGTERM", name)
	}
}

func key(i int) []byte   { return []byte(fmt.Sprintf("cluster-key-%03d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("cluster-value-%03d", i)) }

// scrapeMetrics fetches the gateway's aggregated /metrics exposition.
func scrapeMetrics(addr string) (string, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close() //horam:errok response body close on a read-to-EOF GET
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics: %s", resp.Status)
	}
	return string(b), nil
}

// nodeCycles matches the per-node relabelled cycle counters the
// gateway injects when it aggregates each node's METRICS exposition
// (every node is a 1-shard engine, hence shard="0").
var nodeCycles = regexp.MustCompile(`(?m)^horam_shard_cycles\{node="(\d+)",shard="0"\} (-?\d+)$`)

func perNodeCycles(text string) (map[string]int64, error) {
	out := map[string]int64{}
	for _, m := range nodeCycles.FindAllStringSubmatch(text, -1) {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad cycle sample %q: %w", m[0], err)
		}
		out[m[1]] = n
	}
	return out, nil
}

func run(bin string) error {
	n0Addr, err := freePort()
	if err != nil {
		return err
	}
	n1Addr, err := freePort()
	if err != nil {
		return err
	}
	gwAddr, err := freePort()
	if err != nil {
		return err
	}
	metricsAddr, err := freePort()
	if err != nil {
		return err
	}

	// Two shard nodes, then the gateway over them (its startup probes
	// retry, so racing the nodes' listen is fine — but they are already
	// up here anyway).
	node0, err := startDaemon(bin, append(globalFlags(n0Addr), "-shard-serve", "-shard-index", "0")...)
	if err != nil {
		return fmt.Errorf("node 0: %w", err)
	}
	defer node0.Process.Kill()
	node1, err := startDaemon(bin, append(globalFlags(n1Addr), "-shard-serve", "-shard-index", "1")...)
	if err != nil {
		return fmt.Errorf("node 1: %w", err)
	}
	defer node1.Process.Kill()
	gw, err := startDaemon(bin, append(globalFlags(gwAddr),
		"-gateway", "-nodes", n0Addr+","+n1Addr, "-kv",
		"-metrics-addr", metricsAddr)...)
	if err != nil {
		return fmt.Errorf("gateway: %w", err)
	}
	defer gw.Process.Kill()

	c, err := client.Dial(gwAddr)
	if err != nil {
		return err
	}
	defer c.Close() //horam:errok smoke-test teardown; the assertions already ran

	// Phase 1: healthy cluster. KV traffic scatter/gathers across both
	// nodes and reads back exactly.
	for i := 0; i < keys; i++ {
		if err := c.KSet(key(i), value(i)); err != nil {
			return fmt.Errorf("KSET %d on healthy cluster: %w", i, err)
		}
	}
	// The read-back loop runs concurrently with a /metrics scrape: the
	// gateway must aggregate every node's exposition (METRICS verb,
	// relabelled node="i") while data traffic is in flight.
	verifyErr := make(chan error, 1)
	go func() {
		for i := 0; i < keys; i++ {
			got, ok, err := c.KGet(key(i))
			if err != nil {
				verifyErr <- fmt.Errorf("KGET %d on healthy cluster: %w", i, err)
				return
			}
			if !ok || !bytes.Equal(got, value(i)) {
				verifyErr <- fmt.Errorf("KGET %d on healthy cluster = (%q, %v), want %q", i, got, ok, value(i))
				return
			}
		}
		verifyErr <- nil
	}()
	midText, err := scrapeMetrics(metricsAddr)
	if err != nil {
		return fmt.Errorf("mid-traffic /metrics scrape: %w", err)
	}
	if !strings.Contains(midText, "horam_cluster_nodes 2") {
		return fmt.Errorf("mid-traffic scrape is missing horam_cluster_nodes 2:\n%s", midText)
	}
	mid, err := perNodeCycles(midText)
	if err != nil {
		return err
	}
	if len(mid) != shards {
		return fmt.Errorf("mid-traffic scrape carries cycle counters for %d nodes, want %d:\n%s", len(mid), shards, midText)
	}
	if err := <-verifyErr; err != nil {
		return err
	}
	log.Printf("clustersmoke: healthy cluster served %d KSET + %d KGET; mid-traffic scrape saw node cycles %v", keys, keys, mid)

	// At quiescence the leveling invariant must be visible through the
	// scrape: every node reports the same cycle count.
	quietText, err := scrapeMetrics(metricsAddr)
	if err != nil {
		return fmt.Errorf("quiescent /metrics scrape: %w", err)
	}
	quiet, err := perNodeCycles(quietText)
	if err != nil {
		return err
	}
	if len(quiet) != shards {
		return fmt.Errorf("quiescent scrape carries cycle counters for %d nodes, want %d", len(quiet), shards)
	}
	if quiet["0"] != quiet["1"] || quiet["0"] <= 0 {
		return fmt.Errorf("per-node cycle counters unequal at quiescence: %v (volume leveling must equalise them)", quiet)
	}
	log.Printf("clustersmoke: quiescent scrape: per-node cycles leveled at %d", quiet["0"])

	// Phase 2: kill shard node 1 mid-traffic. Concurrent KGETs are in
	// flight while the SIGTERM lands, so some batches tear mid-drain.
	trafficDone := make(chan struct{})
	var inFlightErrs atomic.Int64
	go func() {
		defer close(trafficDone)
		for i := 0; i < 200; i++ {
			if _, _, err := c.KGet(key(i % keys)); err != nil {
				inFlightErrs.Add(1)
			}
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the traffic loop get going
	if err := node1.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM node 1: %w", err)
	}
	go node1.Wait() //horam:errok reaping the killed node; its exit status is not under test
	select {
	case <-trafficDone:
	case <-time.After(60 * time.Second):
		return fmt.Errorf("gateway wedged: in-flight traffic did not complete within 60s of the node kill")
	}

	// Phase 3: the gateway must stay responsive and surface per-task
	// ERRs that NAME the dead shard — not hang, not crash, not pretend.
	// Every op must return promptly; ops whose blocks (or leveling
	// pass) touch the dead shard report it.
	type outcome struct {
		errs  int
		named int
	}
	res := make(chan outcome, 1)
	go func() {
		var o outcome
		for i := 0; i < 50; i++ {
			_, _, err := c.KGet(key(i % keys))
			if err != nil {
				o.errs++
				if strings.Contains(err.Error(), "shard 1") {
					o.named++
				}
			}
		}
		res <- o
	}()
	var o outcome
	select {
	case o = <-res:
	case <-time.After(60 * time.Second):
		return fmt.Errorf("gateway wedged: post-kill ops did not complete within 60s")
	}
	if o.errs == 0 {
		return fmt.Errorf("no ERR surfaced after killing shard node 1; the gateway is serving as if the cluster were whole")
	}
	if o.named == 0 {
		return fmt.Errorf("ERRs surfaced but none named the dead shard; error attribution lost the node identity")
	}
	log.Printf("clustersmoke: post-kill: %d/50 ops returned ERR, %d named shard 1 (in-flight errors during kill: %d)",
		o.errs, o.named, inFlightErrs.Load())

	// STATS must still answer — and parse — after the node kill: the
	// control connection and the serving loop survived, and the line
	// keeps its full typed shape.
	kvMap, err := c.Stats()
	if err != nil {
		return fmt.Errorf("STATS after node kill: %w", err)
	}
	st, err := client.ParseStats(kvMap)
	if err != nil {
		return fmt.Errorf("STATS after node kill did not parse: %w", err)
	}
	if st.Shards != shards || len(st.PerShard) != shards {
		return fmt.Errorf("STATS after node kill reports %d shards (%d groups), want %d", st.Shards, len(st.PerShard), shards)
	}

	// Phase 4: clean teardown of the survivors. The gateway joins the
	// dead node's close error into its log but must still exit 0.
	if err := stopDaemon("gateway", gw); err != nil {
		return err
	}
	if err := stopDaemon("node 0", node0); err != nil {
		return err
	}
	return nil
}
