// Command sealergate is the sealer-throughput regression gate. It
// reads `go test -bench` output on stdin, extracts the MB/s figure of
// every benchmark line, and compares each against the committed
// baseline (BENCH_sealer.json): the gate fails when any benchmark
// falls below min-ratio of its baseline throughput.
//
// With -update it instead rewrites the baseline from the measured
// run. Multiple -count repetitions are collapsed to the fastest run
// per benchmark (benchstat-style), so scheduler noise on a loaded
// machine biases the gate toward passing, never toward flaking.
//
// Throughput is hardware-dependent; a baseline is only meaningful on
// machines comparable to the one that wrote it. CI regenerates its
// comparison on the runner class recorded in the baseline's cpu
// fields; set SEALER_GATE_SKIP=1 (see scripts/sealer_gate.sh) when
// measuring on incomparable hardware.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Baseline is the committed BENCH_sealer.json shape.
type Baseline struct {
	Experiment string             `json:"experiment"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	CPUs       int                `json:"cpus"`
	Benchmarks map[string]float64 `json:"benchmarks_mb_per_s"`
}

// benchLine matches one `go test -bench` result line that reports
// throughput, e.g.
//
//	BenchmarkSealer/Seal/256-4   309852   732.8 ns/op   349.34 MB/s   ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op\s+([\d.]+) MB/s`)

func parse(f *os.File) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		mbps, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad MB/s in %q: %w", sc.Text(), err)
		}
		if mbps > out[m[1]] { // fastest of -count repetitions
			out[m[1]] = mbps
		}
	}
	return out, sc.Err()
}

func main() {
	baseline := flag.String("baseline", "BENCH_sealer.json", "committed throughput baseline")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	minRatio := flag.Float64("min-ratio", 0.80, "fail when measured/baseline falls below this")
	flag.Parse()

	got, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sealergate:", err)
		os.Exit(1)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "sealergate: no benchmark throughput lines on stdin")
		os.Exit(1)
	}

	if *update {
		b := Baseline{
			Experiment: "sealer",
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			CPUs:       runtime.NumCPU(),
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sealergate:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baseline, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sealergate:", err)
			os.Exit(1)
		}
		fmt.Printf("sealergate: wrote %s (%d benchmarks)\n", *baseline, len(got))
		return
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sealergate:", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "sealergate: %s: %v\n", *baseline, err)
		os.Exit(1)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %-40s baseline %8.1f MB/s, missing from this run\n", name, want)
			failed = true
			continue
		}
		ratio := have / want
		status := "ok  "
		if ratio < *minRatio {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %8.1f MB/s vs baseline %8.1f MB/s (%.2fx, floor %.2fx)\n",
			status, name, have, want, ratio, *minRatio)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "sealergate: sealer throughput regressed below %.0f%% of %s\n", *minRatio*100, *baseline)
		os.Exit(1)
	}
}
