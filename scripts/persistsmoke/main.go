// Command persistsmoke is the end-to-end durability smoke test CI
// runs: it starts a horamd with -data-dir, writes a known data set
// over the wire, kills the daemon with SIGTERM between batches,
// restarts it from the same directory, and verifies every block reads
// back with the contents written before the kill.
//
//	go build -o /tmp/horamd ./cmd/horamd
//	go run ./scripts/persistsmoke -horamd /tmp/horamd
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"syscall"
	"time"

	"repro/internal/client"
)

const (
	blocks    = 4096
	blockSize = 64
	memBytes  = 1 << 20
	shards    = 2
	writes    = 200
)

func main() {
	horamd := flag.String("horamd", "", "path to the horamd binary (required)")
	keep := flag.Bool("keep", false, "keep the data directory for inspection")
	flag.Parse()
	if *horamd == "" {
		log.Fatal("persistsmoke: -horamd is required")
	}
	dir, err := os.MkdirTemp("", "persistsmoke-*")
	if err != nil {
		log.Fatal(err)
	}
	if !*keep {
		defer os.RemoveAll(dir)
	}
	if err := run(*horamd, dir); err != nil {
		log.Fatalf("persistsmoke: FAIL: %v", err)
	}
	fmt.Println("persistsmoke: PASS")
}

func payload(addr int64) []byte {
	p := make([]byte, blockSize)
	copy(p, fmt.Sprintf("smoke-block-%d", addr))
	return p
}

// freePort asks the kernel for a free loopback port.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close() //horam:errok the listener existed only to reserve a free port
	return addr, nil
}

// startDaemon launches horamd and waits until it accepts connections.
func startDaemon(bin, dir, addr string) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-blocks", fmt.Sprint(blocks),
		"-blocksize", fmt.Sprint(blockSize),
		"-mem", fmt.Sprint(memBytes),
		"-shards", fmt.Sprint(shards),
		"-data-dir", dir,
		"-checkpoint", "0", // rely on save-on-shutdown: the SIGTERM path under test
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close() //horam:errok readiness probe; the connection carried no requests
			return cmd, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, fmt.Errorf("horamd never started listening on %s", addr)
}

func stopDaemon(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return fmt.Errorf("horamd did not exit within 30s of SIGTERM")
	}
}

func run(bin, dir string) error {
	addr, err := freePort()
	if err != nil {
		return err
	}

	// Boot 1: fresh store, write the data set in MULTI batches.
	cmd, err := startDaemon(bin, dir, addr)
	if err != nil {
		return err
	}
	c, err := client.Dial(addr)
	if err != nil {
		cmd.Process.Kill()
		return err
	}
	written := make(map[int64]bool)
	var ops []client.Op
	for i := 0; i < writes; i++ {
		a := int64(i * (blocks / writes))
		written[a] = true
		ops = append(ops, client.Op{Write: true, Addr: a, Data: payload(a)})
	}
	for off := 0; off < len(ops); off += 64 {
		end := off + 64
		if end > len(ops) {
			end = len(ops)
		}
		results, err := c.Batch(ops[off:end])
		if err != nil {
			cmd.Process.Kill()
			return fmt.Errorf("write batch: %w", err)
		}
		for i, r := range results {
			if r.Err != nil {
				cmd.Process.Kill()
				return fmt.Errorf("write %d: %w", off+i, r.Err)
			}
		}
	}
	c.Close() //horam:errok smoke-test teardown; the assertions already ran

	// Kill between batches: SIGTERM drains, checkpoints, exits.
	if err := stopDaemon(cmd); err != nil {
		return fmt.Errorf("first shutdown: %w", err)
	}

	// Boot 2: restart from the same directory and read everything
	// back — written blocks carry their payloads, untouched ones zeros.
	cmd, err = startDaemon(bin, dir, addr)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer stopDaemon(cmd)
	c, err = client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close() //horam:errok smoke-test teardown; the assertions already ran
	for a := int64(0); a < blocks; a += blocks / (writes * 2) {
		got, err := c.Read(a)
		if err != nil {
			return fmt.Errorf("read %d after restart: %w", a, err)
		}
		want := make([]byte, blockSize)
		if written[a] {
			want = payload(a)
		}
		if hex.EncodeToString(got) != hex.EncodeToString(want) {
			return fmt.Errorf("block %d after restart = %q, want %q", a, got, want)
		}
	}
	return nil
}
