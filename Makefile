# Local mirror of .github/workflows/ci.yml — `make ci` runs the same
# gates CI enforces on push/PR.

GO ?= go

.PHONY: ci build vet fmt-check test race bench-smoke bench fmt

ci: build vet fmt-check test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/horam ./internal/core ./internal/server

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full benchmark run (slow) — the reproduction's headline numbers.
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

fmt:
	gofmt -w .
