# Local mirror of .github/workflows/ci.yml — `make ci` runs the same
# gates CI enforces on push/PR.

GO ?= go

.PHONY: ci build vet fmt-check test race bench-smoke bench bench-shard fmt

ci: build vet fmt-check test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/horam ./internal/core ./internal/engine ./internal/server

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full benchmark run (slow) — the reproduction's headline numbers.
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Regenerate the committed shard-scaling baseline (BENCH_shard.json):
# aggregate throughput vs shard count through internal/engine.
bench-shard:
	$(GO) run ./cmd/horam-bench -exp shard -out BENCH_shard.json

fmt:
	gofmt -w .
