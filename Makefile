# Local mirror of .github/workflows/ci.yml — `make ci` runs the same
# gates CI enforces on push/PR.

GO ?= go

.PHONY: ci build vet fmt-check lint test test-shuffle race bench-smoke bench bench-shard bench-latency bench-persist bench-kv bench-obs bench-sealer bench-sealer-baseline bench-timing bench-timing-baseline persist-smoke kv-smoke cluster-smoke fmt

ci: build vet fmt-check lint test test-shuffle race bench-smoke bench-sealer bench-timing persist-smoke kv-smoke cluster-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Shuffled test order flushes out inter-test state dependencies that a
# fixed order silently satisfies.
test-shuffle:
	$(GO) test -shuffle=on -count=1 ./...

# Static analysis: the repo's own obliviousness linter (horam-lint:
# ctflow, ctmask, errdrop) plus staticcheck and govulncheck when
# installed. See README "Static obliviousness guarantees".
lint:
	./scripts/lint.sh

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Durability acceptance gate: horamd -data-dir start -> write -> SIGTERM
# -> restart -> read-back over real TCP and a real storage file.
persist-smoke:
	./scripts/persist_smoke.sh

# KV acceptance gate: horamd -kv -data-dir start -> KSET/KGET/KDEL over
# TCP -> SIGTERM -> restart from snapshot -> read the table back.
kv-smoke:
	./scripts/kv_smoke.sh

# Cluster acceptance gate: 2 horamd -shard-serve nodes + 1 -gateway,
# KV traffic over real TCP, SIGTERM one node mid-traffic, assert the
# gateway surfaces per-task ERRs naming the dead shard instead of
# wedging.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Full benchmark run (slow) — the reproduction's headline numbers.
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Regenerate the committed shard-scaling baseline (BENCH_shard.json):
# aggregate throughput vs shard count through internal/engine.
bench-shard:
	$(GO) run ./cmd/horam-bench -exp shard -out BENCH_shard.json

# Regenerate the committed tail-latency baseline (BENCH_latency.json):
# per-request p50/p99/max, monolithic vs deamortized shuffle.
bench-latency:
	$(GO) run ./cmd/horam-bench -exp latency -out BENCH_latency.json

# Regenerate the committed persistence baseline (BENCH_persist.json):
# file-backed storage device vs the in-memory simulator.
bench-persist:
	$(GO) run ./cmd/horam-bench -exp persist -out BENCH_persist.json

# Regenerate the committed KV baseline (BENCH_kv.json): oblivious
# key-value logical throughput vs shard count.
bench-kv:
	$(GO) run ./cmd/horam-bench -exp kv -out BENCH_kv.json

# Observability overhead: instrumented registry + tracer vs the bare
# engine on one workload. Host-machine numbers, so not part of ci.
bench-obs:
	$(GO) run ./cmd/horam-bench -exp obs -out BENCH_obs.json

# Sealer throughput gate: fail if the seal/open microbenchmarks fall
# below 80% of the committed BENCH_sealer.json baseline.
bench-sealer:
	./scripts/sealer_gate.sh

# Regenerate the committed sealer baseline (BENCH_sealer.json).
bench-sealer-baseline:
	./scripts/sealer_gate.sh -update

# Timing-variance gate: constant-time pairs must be statistically
# indistinguishable AND the default-mode canary must stay detectable.
bench-timing:
	./scripts/timing_gate.sh

# Regenerate the committed timing baseline (BENCH_timing.json).
bench-timing-baseline:
	./scripts/timing_gate.sh -update

fmt:
	gofmt -w .
