// Integration tests: cross-module flows exercised end to end with real
// cryptography — the paths the per-package unit tests cover in
// isolation.
package repro

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/blockcipher"
	"repro/internal/core"
	"repro/internal/horam"
)

func integrationKey() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(91 * i)
	}
	return k
}

// TestEndToEndWithRealCrypto runs a full H-ORAM session through the
// public API with AES-CTR+HMAC sealing on every block, crossing
// several shuffle periods.
func TestEndToEndWithRealCrypto(t *testing.T) {
	client, err := core.Open(core.Options{
		Blocks:      512,
		BlockSize:   128,
		MemoryBytes: 16 << 10, // tiny: forces shuffles
		Key:         integrationKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	version := make(map[int64]byte)
	rng := blockcipher.NewRNGFromString("e2e")
	for i := 0; i < 400; i++ {
		a := rng.Int63n(512)
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			if err := client.Write(a, bytes.Repeat([]byte{v}, 128)); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			version[a] = v
		} else {
			got, err := client.Read(a)
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			want := byte(0)
			if v, ok := version[a]; ok {
				want = v
			}
			if !bytes.Equal(got, bytes.Repeat([]byte{want}, 128)) {
				t.Fatalf("iteration %d: Read(%d) corrupted", i, a)
			}
		}
	}
	if client.Stats().Shuffles == 0 {
		t.Fatal("expected shuffle periods with a 16 KB memory tier")
	}
}

// TestTamperDetectedThroughTheStack corrupts a raw storage slot and
// checks that the authentication failure surfaces through H-ORAM's
// public API instead of silently returning wrong data.
func TestTamperDetectedThroughTheStack(t *testing.T) {
	client, err := core.Open(core.Options{
		Blocks:      256,
		BlockSize:   64,
		MemoryBytes: 8 << 10,
		Key:         integrationKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	stor := client.Engine().Stor()
	junk := make([]byte, stor.SlotSize())
	for slot := int64(0); slot < stor.Slots(); slot++ {
		if err := stor.WriteRaw(slot, junk); err != nil {
			t.Fatal(err)
		}
	}
	// Every storage fetch must now fail authentication. The scheduler
	// fetches on the first access.
	if _, err := client.Read(0); err == nil {
		t.Fatal("read of fully tampered storage succeeded")
	}
}

// TestSameSeedSameTrace re-runs a full experiment and requires
// bit-identical scheme counters and virtual time — the property the
// whole evaluation's reproducibility rests on.
func TestSameSeedSameTrace(t *testing.T) {
	run := func() (horam.Stats, int64) {
		client, err := core.Open(core.Options{
			Blocks:      512,
			BlockSize:   64,
			MemoryBytes: 8 << 10,
			Insecure:    true,
			Seed:        "trace-determinism",
		})
		if err != nil {
			t.Fatal(err)
		}
		var reqs []*core.Request
		for i := 0; i < 300; i++ {
			reqs = append(reqs, &core.Request{Addr: int64(i*7) % 512})
		}
		if err := client.Batch(reqs); err != nil {
			t.Fatal(err)
		}
		return client.Stats().Stats, int64(client.Stats().SimulatedTime)
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("same seed diverged:\n%+v @%d\n%+v @%d", s1, t1, s2, t2)
	}
}

// TestHORAMMatchesReferenceModel drives H-ORAM and a plain map with
// the same randomized operation sequence (property-based).
func TestHORAMMatchesReferenceModel(t *testing.T) {
	f := func(ops []uint16, writes []byte) bool {
		client, err := core.Open(core.Options{
			Blocks:      64,
			BlockSize:   16,
			MemoryBytes: 1 << 10,
			Insecure:    true,
			Seed:        "ref-model",
		})
		if err != nil {
			return false
		}
		ref := make(map[int64]byte)
		for i, op := range ops {
			addr := int64(op % 64)
			if i < len(writes) && op%3 == 0 {
				v := writes[i]
				if err := client.Write(addr, bytes.Repeat([]byte{v}, 16)); err != nil {
					return false
				}
				ref[addr] = v
			} else {
				got, err := client.Read(addr)
				if err != nil {
					return false
				}
				want := byte(0)
				if v, ok := ref[addr]; ok {
					want = v
				}
				if !bytes.Equal(got, bytes.Repeat([]byte{want}, 16)) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBatchWriteReadInterleavingAcrossPeriods submits a batch that is
// guaranteed to straddle shuffle periods and checks program-order
// semantics survive the period boundary.
func TestBatchWriteReadInterleavingAcrossPeriods(t *testing.T) {
	client, err := core.Open(core.Options{
		Blocks:      256,
		BlockSize:   32,
		MemoryBytes: 2 << 10, // ~30-block tree: many periods
		Insecure:    true,
		Seed:        "periods",
	})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []*core.Request
	for a := int64(0); a < 200; a++ {
		reqs = append(reqs, &core.Request{Op: horam.OpWrite, Addr: a, Data: bytes.Repeat([]byte{byte(a)}, 32)})
		reqs = append(reqs, &core.Request{Addr: a})
	}
	if err := client.Batch(reqs); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reqs); i += 2 {
		a := reqs[i].Addr
		if !bytes.Equal(reqs[i].Result, bytes.Repeat([]byte{byte(a)}, 32)) {
			t.Fatalf("read of %d after write returned stale data", a)
		}
	}
	if client.Stats().Shuffles < 2 {
		t.Fatalf("batch crossed only %d periods; geometry drifted", client.Stats().Shuffles)
	}
}
